package bench

import (
	"bytes"
	"strings"
	"testing"

	"versiondb/internal/solve"
)

func TestFig12SmallScale(t *testing.T) {
	rows, err := Fig12(TestScale())
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 datasets, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Versions <= 0 || r.Deltas <= 0 {
			t.Errorf("%s: empty dataset (%d versions, %d deltas)", r.Name, r.Versions, r.Deltas)
		}
		if r.MCAStorage > r.SPTStorage {
			t.Errorf("%s: MCA storage %g exceeds SPT storage %g", r.Name, r.MCAStorage, r.SPTStorage)
		}
		if r.SPTSumR > r.MCASumR {
			t.Errorf("%s: SPT ΣR %g exceeds MCA ΣR %g", r.Name, r.SPTSumR, r.MCASumR)
		}
		if r.SPTStorage != r.SPTSumR {
			t.Errorf("%s: SPT storage %g != SPT ΣR %g (all-materialized invariant)", r.Name, r.SPTStorage, r.SPTSumR)
		}
	}
	var buf bytes.Buffer
	FormatFig12(&buf, rows)
	for _, want := range []string{"DC", "LC", "BF", "LF", "MCA storage"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFig13ShapeHolds(t *testing.T) {
	fig, err := Fig13(TestScale())
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	if len(fig.Subplots) != 4 {
		t.Fatalf("want 4 subplots, got %d", len(fig.Subplots))
	}
	for _, sub := range fig.Subplots {
		var lmg *Curve
		for i := range sub.Curves {
			if sub.Curves[i].Name == "LMG" {
				lmg = &sub.Curves[i]
			}
			for _, p := range sub.Curves[i].Points {
				if p.Storage < sub.MinStorage-1e-6 {
					t.Errorf("%s/%s: storage %g below MCA %g", sub.Title, sub.Curves[i].Name, p.Storage, sub.MinStorage)
				}
				if p.SumR < sub.MinSumR-1e-6 {
					t.Errorf("%s/%s: ΣR %g below SPT %g", sub.Title, sub.Curves[i].Name, p.SumR, sub.MinSumR)
				}
			}
		}
		if lmg == nil || len(lmg.Points) == 0 {
			t.Fatalf("%s: no LMG curve", sub.Title)
		}
		// Headline finding: modest storage slack collapses Σ recreation.
		first, last := lmg.Points[0], lmg.Points[len(lmg.Points)-1]
		if last.SumR > first.SumR {
			t.Errorf("%s: LMG ΣR increased along the budget sweep (%g → %g)", sub.Title, first.SumR, last.SumR)
		}
	}
	var buf bytes.Buffer
	FormatFigure(&buf, fig)
	if !strings.Contains(buf.String(), "GitH") {
		t.Errorf("fig13 report missing GitH curve")
	}
}

func TestFig14MPDominatesOnMaxR(t *testing.T) {
	fig, err := Fig14(TestScale())
	if err != nil {
		t.Fatalf("Fig14: %v", err)
	}
	for _, sub := range fig.Subplots {
		curves := map[string]Curve{}
		for _, c := range sub.Curves {
			curves[c.Name] = c
		}
		mp, ok := curves["MP"]
		if !ok || len(mp.Points) == 0 {
			t.Fatalf("%s: missing MP curve", sub.Title)
		}
		// MP's best maxR must reach (near) the SPT lower bound.
		best := mp.Points[0].MaxR
		for _, p := range mp.Points {
			if p.MaxR < best {
				best = p.MaxR
			}
		}
		if best > sub.MinMaxR*1.05+1e-6 {
			t.Errorf("%s: MP best maxR %g far above SPT bound %g", sub.Title, best, sub.MinMaxR)
		}
	}
}

func TestFig15Undirected(t *testing.T) {
	fig, err := Fig15(TestScale())
	if err != nil {
		t.Fatalf("Fig15: %v", err)
	}
	if len(fig.Subplots) != 4 {
		t.Fatalf("want 4 subplots (a-d), got %d", len(fig.Subplots))
	}
}

func TestFig16WorkloadAwareWins(t *testing.T) {
	fig, err := Fig16(TestScale())
	if err != nil {
		t.Fatalf("Fig16: %v", err)
	}
	gaps, err := Fig16Gap(fig)
	if err != nil {
		t.Fatalf("Fig16Gap: %v", err)
	}
	for name, g := range gaps {
		// Aware must be no worse than plain on weighted cost (ratio ≥ ~1).
		if g < 0.98 {
			t.Errorf("%s: workload-aware LMG worse than plain (ratio %.3f)", name, g)
		}
	}
}

// TestAutotuneTelemetryWins is the closed-loop acceptance check: on a
// skewed checkout workload over a live repository, the layout solved with
// telemetry-derived weights serves the observed workload no worse — and in
// practice meaningfully cheaper — than the unweighted layout under the same
// storage budget.
func TestAutotuneTelemetryWins(t *testing.T) {
	rows, err := Autotune(30, 1)
	if err != nil {
		t.Fatalf("Autotune: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 variants, got %+v", rows)
	}
	gap, err := AutotuneGap(rows)
	if err != nil {
		t.Fatalf("AutotuneGap: %v", err)
	}
	// Directional: telemetry must not lose (ratio ≥ ~1); with this skew it
	// should win comfortably.
	if gap < 0.99 {
		t.Errorf("telemetry-weighted layout worse than uniform (Φ_w ratio %.3f): %+v", gap, rows)
	}
	if gap < 1.05 {
		t.Logf("warning: telemetry gain marginal (ratio %.3f)", gap)
	}
}

func TestFig17RuntimesPositive(t *testing.T) {
	rows, err := Fig17(TestScale(), []int{30, 60}, 2)
	if err != nil {
		t.Fatalf("Fig17: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no runtime rows")
	}
	for _, r := range rows {
		if r.TotalSec < r.LMGSec {
			t.Errorf("%s n=%d: total %gs < LMG %gs", r.Dataset, r.Versions, r.TotalSec, r.LMGSec)
		}
	}
}

func TestTable2MPCloseToExact(t *testing.T) {
	rows, err := Table2([]int{10, 15}, 3, 1, solve.ExactOptions{MaxNodes: 2_000_000})
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no table2 rows")
	}
	for _, r := range rows {
		if r.MPStorage < r.ExactStorage-1e-6 && r.ExactOptimal {
			t.Errorf("%s θ=%g: MP %g beat a provably optimal exact %g", r.Dataset, r.Theta, r.MPStorage, r.ExactStorage)
		}
		if r.ExactOptimal && r.MPStorage > 3*r.ExactStorage {
			t.Errorf("%s θ=%g: MP %g far from optimal %g", r.Dataset, r.Theta, r.MPStorage, r.ExactStorage)
		}
	}
	var buf bytes.Buffer
	FormatTable2(&buf, rows)
	if !strings.Contains(buf.String(), "v10") {
		t.Errorf("table2 report missing dataset label")
	}
}

func TestSec52Ordering(t *testing.T) {
	rows, err := Sec52(30, 1)
	if err != nil {
		t.Fatalf("Sec52: %v", err)
	}
	if err := Sec52Ordering(rows); err != nil {
		t.Errorf("%v", err)
	}
	var buf bytes.Buffer
	FormatSec52(&buf, rows)
	if !strings.Contains(buf.String(), "SVN") {
		t.Errorf("sec52 report missing SVN row")
	}
}
