package bench

import (
	"context"
	"fmt"

	"versiondb/internal/solve"
	"versiondb/internal/workload"
)

// Fig16 regenerates Figure 16: workload-aware LMG ("LMG-W") against plain
// LMG on directed DC and LF, with Zipfian (exponent 2) access frequencies.
// Both curves report the *weighted* sum of recreation costs, which is what
// a skewed workload experiences.
func Fig16(s Scale) (*Figure, error) {
	s = s.orDefault()
	fig := &Figure{ID: "fig16", Title: "Workload-aware LMG vs LMG (Zipf exponent 2, weighted Σ recreation)"}
	for _, p := range []workload.Preset{workload.DC, workload.LF} {
		d, err := BuildDataset(p, s.of(p), true, s.Seed)
		if err != nil {
			return nil, err
		}
		freq := workload.Zipf(d.Inst.M.N(), 2, s.Seed+7)
		budgets, err := solve.Budgets(d.Inst, s.SweepPoints)
		if err != nil {
			return nil, err
		}
		plain, err := solve.SweepLMG(context.Background(), d.Inst, budgets, nil)
		if err != nil {
			return nil, err
		}
		aware, err := solve.SweepLMG(context.Background(), d.Inst, budgets, freq)
		if err != nil {
			return nil, err
		}
		sub := Subplot{Title: d.Name}
		mca, err := solve.MinStorage(d.Inst)
		if err != nil {
			return nil, err
		}
		sub.MinStorage = mca.Storage
		sub.Curves = append(sub.Curves,
			weightedCurve("LMG", plain, freq),
			weightedCurve("LMG-W", aware, freq))
		fig.Subplots = append(fig.Subplots, sub)
	}
	return fig, nil
}

// weightedCurve reports each solution's weighted Σ recreation in SumR.
func weightedCurve(name string, sols []*solve.Solution, freq []float64) Curve {
	c := Curve{Name: name, Points: make([]Point, 0, len(sols))}
	for _, s := range sols {
		// The tree spans versions at vertices 1..n; vertex 0 has weight 0.
		w := make([]float64, len(freq)+1)
		copy(w[1:], freq)
		c.Points = append(c.Points, Point{
			Param:   s.Param,
			Storage: s.Storage,
			SumR:    s.Tree.WeightedSumRecreation(w),
			MaxR:    s.MaxR,
			Seconds: s.Elapsed.Seconds(),
		})
	}
	return c
}

// Fig16Gap returns, per dataset, the mean ratio of plain-LMG weighted cost
// to workload-aware weighted cost across the sweep (>1 means the aware
// variant wins) — the summary statistic EXPERIMENTS.md records.
func Fig16Gap(fig *Figure) (map[string]float64, error) {
	out := map[string]float64{}
	for _, sub := range fig.Subplots {
		if len(sub.Curves) != 2 {
			return nil, fmt.Errorf("bench: fig16 subplot %s has %d curves", sub.Title, len(sub.Curves))
		}
		plain, aware := sub.Curves[0], sub.Curves[1]
		if len(plain.Points) != len(aware.Points) || len(plain.Points) == 0 {
			return nil, fmt.Errorf("bench: fig16 subplot %s has mismatched sweeps", sub.Title)
		}
		var ratio float64
		for i := range plain.Points {
			ratio += plain.Points[i].SumR / aware.Points[i].SumR
		}
		out[sub.Title] = ratio / float64(len(plain.Points))
	}
	return out, nil
}
