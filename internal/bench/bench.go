// Package bench regenerates every table and figure of the paper's
// evaluation (§5) at reproduction scale: Figure 12's dataset-property
// table, the Figure 13–15 storage/recreation tradeoff curves, Figure 16's
// workload-aware comparison, Figure 17's running-time scaling, Table 2's
// exact-vs-MP comparison, and the §5.2 SVN/Git/gzip storage comparison.
//
// Runners return structured Figure values; Format renders them as aligned
// text tables that cmd/vbench and the root benchmarks print.
package bench

import (
	"fmt"

	"versiondb/internal/costs"
	"versiondb/internal/solve"
	"versiondb/internal/workload"
)

// Scale sets the dataset sizes used by the runners. The zero value is
// replaced by DefaultScale.
type Scale struct {
	DC, LC, BF, LF int
	SweepPoints    int // points per tradeoff curve
	Seed           int64
}

// DefaultScale is the laptop-scale default: the paper's relative ordering
// of dataset sizes at ~1/100 of its version counts.
func DefaultScale() Scale {
	return Scale{DC: 1000, LC: 1000, BF: 400, LF: 100, SweepPoints: 8, Seed: 1}
}

// TestScale is a fast configuration for unit tests and -short benchmarks.
func TestScale() Scale {
	return Scale{DC: 120, LC: 120, BF: 60, LF: 40, SweepPoints: 4, Seed: 1}
}

func (s Scale) orDefault() Scale {
	d := DefaultScale()
	if s.DC <= 0 {
		s.DC = d.DC
	}
	if s.LC <= 0 {
		s.LC = d.LC
	}
	if s.BF <= 0 {
		s.BF = d.BF
	}
	if s.LF <= 0 {
		s.LF = d.LF
	}
	if s.SweepPoints <= 0 {
		s.SweepPoints = d.SweepPoints
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	return s
}

func (s Scale) of(p workload.Preset) int {
	switch p {
	case workload.DC:
		return s.DC
	case workload.LC:
		return s.LC
	case workload.BF:
		return s.BF
	default:
		return s.LF
	}
}

// Point is one solution on a tradeoff curve.
type Point struct {
	Param   float64 // the algorithm knob that produced it
	Storage float64
	SumR    float64
	MaxR    float64
	Seconds float64
}

// Curve is one algorithm's series.
type Curve struct {
	Name   string
	Points []Point
}

// Subplot is one panel of a figure: a dataset with several curves plus the
// MCA/SPT reference lines the paper draws as dashed guides.
type Subplot struct {
	Title      string
	MinStorage float64 // MCA total storage (vertical guide)
	MinSumR    float64 // SPT Σ recreation (horizontal guide)
	MinMaxR    float64 // SPT max recreation
	Curves     []Curve
	Notes      []string
}

// Figure is a regenerated paper artifact.
type Figure struct {
	ID       string
	Title    string
	Subplots []Subplot
}

// Dataset is a named solver instance.
type Dataset struct {
	Name string
	Inst *solve.Instance
}

// BuildDataset constructs one preset instance.
func BuildDataset(p workload.Preset, n int, directed bool, seed int64) (Dataset, error) {
	m, err := workload.Build(p, n, directed, seed)
	if err != nil {
		return Dataset{}, fmt.Errorf("bench: build %s: %w", p, err)
	}
	inst, err := solve.NewInstance(m)
	if err != nil {
		return Dataset{}, fmt.Errorf("bench: build %s: %w", p, err)
	}
	return Dataset{Name: string(p), Inst: inst}, nil
}

// BuildAll constructs the four presets.
func BuildAll(s Scale, directed bool) ([]Dataset, error) {
	s = s.orDefault()
	out := make([]Dataset, 0, len(workload.Presets))
	for _, p := range workload.Presets {
		d, err := BuildDataset(p, s.of(p), directed, s.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func toPoint(s *solve.Solution) Point {
	return Point{
		Param:   s.Param,
		Storage: s.Storage,
		SumR:    s.SumR,
		MaxR:    s.MaxR,
		Seconds: s.Elapsed.Seconds(),
	}
}

func toCurve(name string, sols []*solve.Solution) Curve {
	c := Curve{Name: name, Points: make([]Point, 0, len(sols))}
	for _, s := range sols {
		c.Points = append(c.Points, toPoint(s))
	}
	return c
}

// matrixStats summarizes a cost matrix for Figure 12.
func matrixStats(m *costs.Matrix) (versions, deltas int, avgSize float64) {
	versions = m.N()
	deltas = m.NumDeltas()
	if m.Directed() {
		// NumDeltas counts ordered entries already.
	} else {
		deltas *= 2 // paper counts both directions of symmetric deltas
	}
	avgSize = m.AverageFullStorage()
	return versions, deltas, avgSize
}
