// Package heaps provides indexed priority queues used by the graph
// algorithms in this module: a binary heap with decrease-key and a pairing
// heap. Both store integer items (vertex ids) with float64 priorities.
//
// The paper (§3) notes that Prim's and Dijkstra's algorithms run in
// O(E log V) with a binary-heap priority queue and O(E + V log V) with a
// Fibonacci-heap-style queue; the pairing heap provides the latter's
// amortized profile in practice with far less constant overhead.
package heaps

// Binary is an indexed binary min-heap keyed by float64 priority.
// Items are non-negative ints (vertex ids). The zero value is not usable;
// call NewBinary.
type Binary struct {
	items []int     // heap order
	prio  []float64 // priority per heap slot
	pos   map[int]int
}

// NewBinary returns an empty indexed binary heap with capacity hint n.
func NewBinary(n int) *Binary {
	return &Binary{
		items: make([]int, 0, n),
		prio:  make([]float64, 0, n),
		pos:   make(map[int]int, n),
	}
}

// Len reports the number of items in the heap.
func (h *Binary) Len() int { return len(h.items) }

// Contains reports whether item is in the heap.
func (h *Binary) Contains(item int) bool {
	_, ok := h.pos[item]
	return ok
}

// Priority returns the current priority of item and whether it is present.
func (h *Binary) Priority(item int) (float64, bool) {
	i, ok := h.pos[item]
	if !ok {
		return 0, false
	}
	return h.prio[i], true
}

// Push inserts item with the given priority. If the item is already present
// its priority is updated (up or down).
func (h *Binary) Push(item int, priority float64) {
	if i, ok := h.pos[item]; ok {
		old := h.prio[i]
		h.prio[i] = priority
		if priority < old {
			h.up(i)
		} else {
			h.down(i)
		}
		return
	}
	h.items = append(h.items, item)
	h.prio = append(h.prio, priority)
	h.pos[item] = len(h.items) - 1
	h.up(len(h.items) - 1)
}

// DecreaseKey lowers the priority of item. It is a no-op if the new priority
// is not lower or the item is absent.
func (h *Binary) DecreaseKey(item int, priority float64) {
	i, ok := h.pos[item]
	if !ok || priority >= h.prio[i] {
		return
	}
	h.prio[i] = priority
	h.up(i)
}

// Pop removes and returns the item with the minimum priority.
// It panics if the heap is empty.
func (h *Binary) Pop() (int, float64) {
	if len(h.items) == 0 {
		panic("heaps: Pop from empty Binary heap")
	}
	top := h.items[0]
	pri := h.prio[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	h.prio = h.prio[:last]
	delete(h.pos, top)
	if last > 0 {
		h.down(0)
	}
	return top, pri
}

// Peek returns the minimum item without removing it.
// It panics if the heap is empty.
func (h *Binary) Peek() (int, float64) {
	if len(h.items) == 0 {
		panic("heaps: Peek on empty Binary heap")
	}
	return h.items[0], h.prio[0]
}

// Remove deletes item from the heap if present, returning whether it was.
func (h *Binary) Remove(item int) bool {
	i, ok := h.pos[item]
	if !ok {
		return false
	}
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	h.prio = h.prio[:last]
	delete(h.pos, item)
	if i < last {
		h.down(i)
		h.up(i)
	}
	return true
}

func (h *Binary) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= h.prio[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Binary) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.prio[l] < h.prio[small] {
			small = l
		}
		if r < n && h.prio[r] < h.prio[small] {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

func (h *Binary) swap(i, j int) {
	if i == j {
		return
	}
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
	h.pos[h.items[i]] = i
	h.pos[h.items[j]] = j
}
