package heaps

// Pairing is an indexed pairing heap: a heap-ordered multiway tree with
// O(1) insert/meld, O(1) amortized decrease-key, and O(log n) amortized
// delete-min. It serves as the "Fibonacci heap" stand-in the paper cites
// for the O(E + V log V) variants of Prim's and Dijkstra's algorithms.
type Pairing struct {
	root  *pairNode
	nodes map[int]*pairNode
	size  int
}

type pairNode struct {
	item    int
	prio    float64
	child   *pairNode // leftmost child
	sibling *pairNode // next sibling to the right
	prev    *pairNode // parent if leftmost child, else left sibling
}

// NewPairing returns an empty pairing heap with capacity hint n.
func NewPairing(n int) *Pairing {
	return &Pairing{nodes: make(map[int]*pairNode, n)}
}

// Len reports the number of items in the heap.
func (h *Pairing) Len() int { return h.size }

// Contains reports whether item is in the heap.
func (h *Pairing) Contains(item int) bool {
	_, ok := h.nodes[item]
	return ok
}

// Priority returns the current priority of item and whether it is present.
func (h *Pairing) Priority(item int) (float64, bool) {
	n, ok := h.nodes[item]
	if !ok {
		return 0, false
	}
	return n.prio, true
}

// Push inserts item with the given priority, or adjusts its priority if it
// is already present (decrease only; increases are handled by remove+insert).
func (h *Pairing) Push(item int, priority float64) {
	if n, ok := h.nodes[item]; ok {
		if priority < n.prio {
			h.DecreaseKey(item, priority)
		} else if priority > n.prio {
			h.removeNode(n)
			h.insertNew(item, priority)
		}
		return
	}
	h.insertNew(item, priority)
}

func (h *Pairing) insertNew(item int, priority float64) {
	n := &pairNode{item: item, prio: priority}
	h.nodes[item] = n
	h.root = meld(h.root, n)
	h.size++
}

// DecreaseKey lowers the priority of item. No-op when not lower or absent.
func (h *Pairing) DecreaseKey(item int, priority float64) {
	n, ok := h.nodes[item]
	if !ok || priority >= n.prio {
		return
	}
	n.prio = priority
	if n == h.root {
		return
	}
	h.cut(n)
	h.root = meld(h.root, n)
}

// Pop removes and returns the item with the minimum priority.
// It panics if the heap is empty.
func (h *Pairing) Pop() (int, float64) {
	if h.root == nil {
		panic("heaps: Pop from empty Pairing heap")
	}
	top := h.root
	h.root = mergePairs(top.child)
	if h.root != nil {
		h.root.prev = nil
		h.root.sibling = nil
	}
	delete(h.nodes, top.item)
	h.size--
	return top.item, top.prio
}

// Peek returns the minimum item without removing it.
// It panics if the heap is empty.
func (h *Pairing) Peek() (int, float64) {
	if h.root == nil {
		panic("heaps: Peek on empty Pairing heap")
	}
	return h.root.item, h.root.prio
}

// Remove deletes item from the heap if present, returning whether it was.
func (h *Pairing) Remove(item int) bool {
	n, ok := h.nodes[item]
	if !ok {
		return false
	}
	h.removeNode(n)
	return true
}

func (h *Pairing) removeNode(n *pairNode) {
	if n == h.root {
		h.Pop()
		return
	}
	h.cut(n)
	sub := mergePairs(n.child)
	if sub != nil {
		sub.prev = nil
		sub.sibling = nil
		h.root = meld(h.root, sub)
	}
	delete(h.nodes, n.item)
	h.size--
}

// cut detaches n (a non-root node) from its parent/sibling list.
func (h *Pairing) cut(n *pairNode) {
	if n.prev.child == n { // n is the leftmost child: prev is the parent
		n.prev.child = n.sibling
	} else {
		n.prev.sibling = n.sibling
	}
	if n.sibling != nil {
		n.sibling.prev = n.prev
	}
	n.prev = nil
	n.sibling = nil
}

// meld links two heap-ordered trees, returning the smaller root.
func meld(a, b *pairNode) *pairNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.prio < a.prio {
		a, b = b, a
	}
	// b becomes the leftmost child of a.
	b.prev = a
	b.sibling = a.child
	if a.child != nil {
		a.child.prev = b
	}
	a.child = b
	a.sibling = nil
	return a
}

// mergePairs performs the two-pass pairing over a sibling list.
func mergePairs(first *pairNode) *pairNode {
	if first == nil || first.sibling == nil {
		return first
	}
	a, b := first, first.sibling
	rest := b.sibling
	a.sibling, a.prev = nil, nil
	b.sibling, b.prev = nil, nil
	return meld(meld(a, b), mergePairs(rest))
}
