package heaps

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// pq is the common surface both heaps satisfy.
type pq interface {
	Len() int
	Push(item int, priority float64)
	DecreaseKey(item int, priority float64)
	Pop() (int, float64)
	Peek() (int, float64)
	Contains(item int) bool
	Priority(item int) (float64, bool)
	Remove(item int) bool
}

func heapsUnderTest() map[string]func(int) pq {
	return map[string]func(int) pq{
		"binary":  func(n int) pq { return NewBinary(n) },
		"pairing": func(n int) pq { return NewPairing(n) },
	}
}

func TestPushPopSorted(t *testing.T) {
	for name, mk := range heapsUnderTest() {
		t.Run(name, func(t *testing.T) {
			h := mk(8)
			values := []float64{5, 3, 8, 1, 9, 2, 7, 4}
			for i, v := range values {
				h.Push(i, v)
			}
			if h.Len() != len(values) {
				t.Fatalf("Len = %d, want %d", h.Len(), len(values))
			}
			var got []float64
			for h.Len() > 0 {
				_, p := h.Pop()
				got = append(got, p)
			}
			if !sort.Float64sAreSorted(got) {
				t.Errorf("pop sequence not sorted: %v", got)
			}
		})
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	for name, mk := range heapsUnderTest() {
		t.Run(name, func(t *testing.T) {
			h := mk(4)
			h.Push(1, 10)
			h.Push(2, 5)
			item, p := h.Peek()
			if item != 2 || p != 5 {
				t.Errorf("Peek = (%d,%g), want (2,5)", item, p)
			}
			if h.Len() != 2 {
				t.Errorf("Peek changed Len to %d", h.Len())
			}
		})
	}
}

func TestDecreaseKeyReordersMin(t *testing.T) {
	for name, mk := range heapsUnderTest() {
		t.Run(name, func(t *testing.T) {
			h := mk(4)
			h.Push(0, 10)
			h.Push(1, 20)
			h.Push(2, 30)
			h.DecreaseKey(2, 1)
			if item, p := h.Pop(); item != 2 || p != 1 {
				t.Errorf("after DecreaseKey, Pop = (%d,%g), want (2,1)", item, p)
			}
		})
	}
}

func TestDecreaseKeyIgnoresIncrease(t *testing.T) {
	for name, mk := range heapsUnderTest() {
		t.Run(name, func(t *testing.T) {
			h := mk(2)
			h.Push(0, 10)
			h.DecreaseKey(0, 50)
			if p, ok := h.Priority(0); !ok || p != 10 {
				t.Errorf("priority = (%g,%v), want (10,true)", p, ok)
			}
			h.DecreaseKey(99, 1) // absent: no-op, no panic
		})
	}
}

func TestPushExistingUpdates(t *testing.T) {
	for name, mk := range heapsUnderTest() {
		t.Run(name, func(t *testing.T) {
			h := mk(4)
			h.Push(0, 10)
			h.Push(1, 20)
			h.Push(1, 5) // decrease via Push
			if item, _ := h.Peek(); item != 1 {
				t.Errorf("Peek = %d, want 1 after decrease", item)
			}
			h.Push(1, 30) // increase via Push
			if item, _ := h.Peek(); item != 0 {
				t.Errorf("Peek = %d, want 0 after increase", item)
			}
			if h.Len() != 2 {
				t.Errorf("Len = %d, want 2 (no duplicates)", h.Len())
			}
		})
	}
}

func TestRemove(t *testing.T) {
	for name, mk := range heapsUnderTest() {
		t.Run(name, func(t *testing.T) {
			h := mk(8)
			for i := 0; i < 6; i++ {
				h.Push(i, float64(10-i))
			}
			if !h.Remove(3) {
				t.Fatalf("Remove(3) = false")
			}
			if h.Remove(3) {
				t.Fatalf("double Remove(3) = true")
			}
			if h.Contains(3) {
				t.Errorf("Contains(3) after Remove")
			}
			var got []int
			for h.Len() > 0 {
				item, _ := h.Pop()
				got = append(got, item)
			}
			want := []int{5, 4, 2, 1, 0} // priorities 5,6,8,9,10
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("pop order %v, want %v", got, want)
					break
				}
			}
		})
	}
}

func TestPopEmptyPanics(t *testing.T) {
	for name, mk := range heapsUnderTest() {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Pop on empty heap did not panic")
				}
			}()
			mk(0).Pop()
		})
	}
}

// TestQuickAgainstReference drives both heaps with random operation
// sequences and checks every observation against a naive reference.
func TestQuickAgainstReference(t *testing.T) {
	for name, mk := range heapsUnderTest() {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				h := mk(16)
				ref := map[int]float64{}
				for op := 0; op < 300; op++ {
					switch rng.Intn(5) {
					case 0, 1: // push
						item := rng.Intn(20)
						pri := float64(rng.Intn(1000))
						if old, ok := ref[item]; ok && pri > old {
							// Push with higher priority: binary updates,
							// pairing reinserts — both must end at pri.
							h.Push(item, pri)
							ref[item] = pri
						} else {
							h.Push(item, pri)
							ref[item] = pri
						}
					case 2: // decrease-key
						item := rng.Intn(20)
						pri := float64(rng.Intn(1000))
						if old, ok := ref[item]; ok && pri < old {
							ref[item] = pri
						}
						h.DecreaseKey(item, pri)
					case 3: // pop
						if len(ref) == 0 {
							continue
						}
						item, pri := h.Pop()
						want, ok := ref[item]
						if !ok || want != pri {
							t.Logf("pop returned (%d,%g), ref %v", item, pri, ref)
							return false
						}
						for _, p := range ref {
							if p < pri {
								t.Logf("pop %g was not the minimum (%v)", pri, ref)
								return false
							}
						}
						delete(ref, item)
					case 4: // remove
						item := rng.Intn(20)
						_, ok := ref[item]
						if h.Remove(item) != ok {
							t.Logf("Remove(%d) mismatch", item)
							return false
						}
						delete(ref, item)
					}
					if h.Len() != len(ref) {
						t.Logf("Len %d, ref %d", h.Len(), len(ref))
						return false
					}
				}
				// Drain and verify sortedness + exact multiset.
				prev := -1.0
				for h.Len() > 0 {
					item, pri := h.Pop()
					if pri < prev {
						return false
					}
					prev = pri
					if ref[item] != pri {
						return false
					}
					delete(ref, item)
				}
				return len(ref) == 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}
