// Package uf implements a union-find (disjoint set union) structure with
// union by rank and path compression. It backs Kruskal's minimum spanning
// tree algorithm and cycle detection in the Chu-Liu/Edmonds arborescence
// algorithm.
package uf

// UF is a disjoint-set forest over the integers [0, n).
type UF struct {
	parent []int
	rank   []byte
	count  int
}

// New returns a union-find structure over n singleton sets.
func New(n int) *UF {
	u := &UF{parent: make([]int, n), rank: make([]byte, n), count: n}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Find returns the canonical representative of x's set.
func (u *UF) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether they were
// previously distinct.
func (u *UF) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.count--
	return true
}

// Connected reports whether x and y are in the same set.
func (u *UF) Connected(x, y int) bool { return u.Find(x) == u.Find(y) }

// Count returns the number of disjoint sets.
func (u *UF) Count() int { return u.count }
