package uf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	u := New(5)
	if u.Count() != 5 {
		t.Fatalf("Count = %d, want 5", u.Count())
	}
	for i := 0; i < 5; i++ {
		if u.Find(i) != i {
			t.Errorf("Find(%d) = %d, want %d", i, u.Find(i), i)
		}
	}
	if u.Connected(0, 1) {
		t.Errorf("fresh elements connected")
	}
}

func TestUnionMergesAndCounts(t *testing.T) {
	u := New(4)
	if !u.Union(0, 1) {
		t.Fatalf("Union(0,1) = false on first merge")
	}
	if u.Union(1, 0) {
		t.Fatalf("Union(1,0) = true on repeat merge")
	}
	if !u.Connected(0, 1) {
		t.Errorf("0 and 1 not connected after union")
	}
	if u.Count() != 3 {
		t.Errorf("Count = %d, want 3", u.Count())
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Count() != 1 {
		t.Errorf("Count = %d, want 1", u.Count())
	}
	if !u.Connected(1, 2) {
		t.Errorf("transitive connectivity broken")
	}
}

// TestQuickMatchesNaive compares against a naive component labeling over
// random union sequences.
func TestQuickMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 40
		u := New(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(a, b int) {
			la, lb := label[a], label[b]
			if la == lb {
				return
			}
			for i := range label {
				if label[i] == lb {
					label[i] = la
				}
			}
		}
		for op := 0; op < 80; op++ {
			a, b := rng.Intn(n), rng.Intn(n)
			wantNew := label[a] != label[b]
			if u.Union(a, b) != wantNew {
				return false
			}
			relabel(a, b)
			x, y := rng.Intn(n), rng.Intn(n)
			if u.Connected(x, y) != (label[x] == label[y]) {
				return false
			}
		}
		comps := map[int]bool{}
		for _, l := range label {
			comps[l] = true
		}
		return u.Count() == len(comps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
