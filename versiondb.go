// Package versiondb is a dataset versioning library that balances storage
// cost against recreation cost, implementing "Principles of Dataset
// Versioning: Exploring the Recreation/Storage Tradeoff" (Bhattacherjee et
// al., VLDB 2015).
//
// The library answers one question: given many versions of a dataset and
// the costs of storing each version whole (Δii, Φii) or as a delta from
// another version (Δij, Φij), which versions should be materialized and
// which stored as deltas? Solutions are spanning trees of an augmented
// graph rooted at a dummy vertex (paper §2.2); six optimization problems
// trade the two costs in different ways (paper Table 1):
//
//	Problem 1  min storage                      → MinStorage (MST/MCA)
//	Problem 2  min every recreation cost        → MinRecreation (SPT)
//	Problem 3  min Σ recreation s.t. storage ≤ β → LMG
//	Problem 4  min max recreation s.t. storage ≤ β → Problem4 (MP + search)
//	Problem 5  min storage s.t. Σ recreation ≤ θ → Problem5 (LMG + search)
//	Problem 6  min storage s.t. max recreation ≤ θ → MP
//
// All solvers sit behind one request/result API: a Request names a
// registered solver (mst, spt, lmg, mp, last, gith, exact, p4, p5) and
// carries its knobs, Solve dispatches through the registry under a
// context.Context (cancelable mid-solve), and failures are normalized
// sentinels (ErrUnknownSolver, ErrInvalidRequest, ErrInfeasible,
// ErrCanceled). A typical session builds a cost Matrix, wraps it in an
// Instance, and solves:
//
//	m := versiondb.NewMatrix(3, true)
//	m.SetFull(0, 1000, 1000)
//	m.SetFull(1, 1010, 1010)
//	m.SetFull(2, 1020, 1020)
//	m.SetDelta(0, 1, 25, 25)
//	m.SetDelta(1, 2, 30, 30)
//	inst, _ := versiondb.NewInstance(m)
//	res, _ := versiondb.Solve(ctx, inst, versiondb.Request{Solver: "lmg", Budget: 1100})
//
// Solvers() lists the registry with each solver's paper problem and
// declared constraint. The per-algorithm functions (LMG, MP, LAST, ...)
// remain as thin wrappers over the same implementations for callers that
// do not need names or cancellation.
//
// Beyond the solvers, the module ships every substrate of the paper's
// prototype: differencing algorithms (internal/delta), a content-addressed
// store with delta-chain layouts (internal/store), a Git-like dataset
// repository with an HTTP server and client (internal/repo, internal/vcs),
// workload generators (internal/workload), and a benchmark harness that
// regenerates each table and figure of the evaluation (internal/bench,
// cmd/vbench).
//
// # Storage backends, caching, and concurrency
//
// The physical layer is pluggable: every layout reads and writes blobs
// through the Backend interface (Put/Get/Has/Delete/List over
// content-addressed blobs, plus atomic named-metadata persistence). Two
// implementations ship today — the loose-objects+packfile filesystem store
// (OpenObjectStore) and a concurrency-safe in-memory store (NewMemStore)
// for serving replicas and tests:
//
//	r, _ := versiondb.InitRepoBackend(versiondb.NewMemStore())
//	r.EnableCache(64)            // LRU counted in versions, or:
//	r.EnableCacheBytes(64 << 20) // LRU under a hard byte budget
//
// Checkout cost is the paper's recreation cost Φ; the checkout LRU bounds
// the effective Φ on the hot path, so a repeat checkout (or one whose
// chain passes a cached ancestor) skips delta replay partially or
// entirely. EnableCache bounds the LRU by version count; EnableCacheBytes
// bounds it by resident payload bytes — a hard memory envelope under
// which payloads larger than the whole budget bypass admission.
// Concurrent cold checkouts of the same version coalesce onto a single
// chain materialization, and intermediate chain nodes are admitted to the
// cache so sibling checkouts pay only their chain suffix. A Repo is a
// multi-reader service: checkouts, logs and stats proceed in parallel
// under a read lock while commits, merges and optimizations serialize
// behind the write lock; the HTTP server (internal/vcs) delegates
// concurrency control to the Repo.
package versiondb

import (
	"context"

	"versiondb/internal/autotune"
	"versiondb/internal/costs"
	"versiondb/internal/jobs"
	"versiondb/internal/repo"
	"versiondb/internal/solve"
	"versiondb/internal/store"
	"versiondb/internal/workload"
)

// Matrix holds the sparse Δ (storage) and Φ (recreation) cost matrices.
type Matrix = costs.Matrix

// Pair is a ⟨storage, recreation⟩ cost annotation.
type Pair = costs.Pair

// Scenario identifies the undirected/directed × Φ=Δ/Φ≠Δ regimes.
type Scenario = costs.Scenario

// Scenario constants (paper Table 1 columns).
const (
	UndirectedProportional = costs.UndirectedProportional
	DirectedProportional   = costs.DirectedProportional
	DirectedGeneral        = costs.DirectedGeneral
)

// NewMatrix returns an empty cost matrix over n versions.
func NewMatrix(n int, directed bool) *Matrix { return costs.NewMatrix(n, directed) }

// Instance is a cost matrix together with its augmented graph.
type Instance = solve.Instance

// Solution is a storage graph with its aggregate costs.
type Solution = solve.Solution

// NewInstance builds the augmented graph for a matrix.
func NewInstance(m *Matrix) (*Instance, error) { return solve.NewInstance(m) }

// Request names a registered solver and carries every knob the solvers
// accept (Budget, Theta, Alpha, Weights, Iters, Window, MaxDepth,
// MaxNodes).
type Request = solve.Request

// Result is a solve outcome: the Solution plus the producing solver's name
// and optimality metadata.
type Result = solve.Result

// SolverInfo is a registered solver's capability record (paper problem,
// objective, declared constraint, sweep knob).
type SolverInfo = solve.Info

// Normalized solver errors; test with errors.Is.
var (
	// ErrUnknownSolver: the Request names no registered solver.
	ErrUnknownSolver = solve.ErrUnknownSolver
	// ErrInvalidRequest: a knob fails the named solver's validation.
	ErrInvalidRequest = solve.ErrInvalidRequest
	// ErrInfeasible: no spanning tree satisfies the requested constraint.
	ErrInfeasible = solve.ErrInfeasible
	// ErrCanceled: the context was canceled mid-solve.
	ErrCanceled = solve.ErrCanceled
)

// Solve is the unified solver entry point: it dispatches req through the
// registry under ctx. Iterative solvers (LMG, MP, the binary searches, the
// exact branch and bound) honor cancellation mid-solve.
func Solve(ctx context.Context, inst *Instance, req Request) (*Result, error) {
	return solve.Solve(ctx, inst, req)
}

// Solvers lists every registered solver's capability record, sorted by
// name.
func Solvers() []SolverInfo { return solve.Solvers() }

// SolverNames lists the registered solver names, sorted.
func SolverNames() []string { return solve.Names() }

// MinStorage solves Problem 1 (minimum spanning tree / arborescence).
func MinStorage(inst *Instance) (*Solution, error) { return solve.MinStorage(inst) }

// MinRecreation solves Problem 2 (shortest path tree).
func MinRecreation(inst *Instance) (*Solution, error) { return solve.MinRecreation(inst) }

// LMGOptions configure the Local Move Greedy heuristic.
type LMGOptions = solve.LMGOptions

// LMG solves Problem 3: minimize Σ recreation under a storage budget.
func LMG(inst *Instance, opts LMGOptions) (*Solution, error) { return solve.LMG(inst, opts) }

// MP solves Problem 6: minimize storage under a max-recreation bound.
func MP(inst *Instance, theta float64) (*Solution, error) { return solve.MP(inst, theta) }

// LAST balances the MST and SPT with per-vertex stretch bound α.
func LAST(inst *Instance, alpha float64) (*Solution, error) { return solve.LAST(inst, alpha) }

// GitHOptions configure the Git repack heuristic.
type GitHOptions = solve.GitHOptions

// GitH runs the Git repack heuristic (window/depth).
func GitH(inst *Instance, opts GitHOptions) (*Solution, error) { return solve.GitH(inst, opts) }

// Problem4 minimizes max recreation under a storage budget, running the
// default 40 binary-search iterations. Use Solve with Request.Iters to
// control the search depth.
func Problem4(inst *Instance, beta float64) (*Solution, error) {
	return solve.Problem4(inst, beta, 0)
}

// Problem5 minimizes storage under a Σ-recreation bound, running the
// default 40 binary-search iterations. Use Solve with Request.Iters to
// control the search depth.
func Problem5(inst *Instance, theta float64) (*Solution, error) {
	return solve.Problem5(inst, theta, 0)
}

// ExactOptions bound the exact branch-and-bound solver.
type ExactOptions = solve.ExactOptions

// ExactResult is the exact solver's outcome.
type ExactResult = solve.ExactResult

// Exact solves Problem 6 exactly by branch and bound (small instances).
func Exact(inst *Instance, theta float64, opts ExactOptions) (*ExactResult, error) {
	return solve.ExactMinStorageMaxR(inst, theta, opts)
}

// Budgets interpolates k storage budgets between the MST and SPT costs.
func Budgets(inst *Instance, k int) ([]float64, error) { return solve.Budgets(inst, k) }

// Thetas interpolates k max-recreation bounds between the SPT and MST.
func Thetas(inst *Instance, k int) ([]float64, error) { return solve.Thetas(inst, k) }

// Online incrementally maintains a storage graph as versions arrive — the
// online variant the paper lists as future work (§7).
type Online = solve.Online

// OnlineOptions configure an Online store.
type OnlineOptions = solve.OnlineOptions

// Online placement policies.
const (
	OnlineMinDelta = solve.OnlineMinDelta
	OnlineBounded  = solve.OnlineBounded
)

// NewOnline returns an empty online store.
func NewOnline(opts OnlineOptions) *Online { return solve.NewOnline(opts) }

// Backend is the pluggable content-addressed blob store beneath every
// repository and layout.
type Backend = store.Backend

// MetaStore persists small named metadata documents atomically; both
// shipped backends implement it.
type MetaStore = store.MetaStore

// LogStore marks a backend with append-only log support: a repository on
// such a backend persists its metadata as an append-only record log with
// snapshot compaction and crash-recovery replay instead of rewriting
// whole documents. Both shipped backends implement it.
type LogStore = store.LogStore

// ObjectStore is the filesystem backend (loose objects + packfiles).
type ObjectStore = store.ObjectStore

// MemStore is the concurrency-safe in-memory backend.
type MemStore = store.MemStore

// VersionCache is the bounded LRU of materialized versions used on the
// checkout path — bounded by version count (NewVersionCache /
// Repo.EnableCache) or by resident payload bytes (NewVersionCacheBytes /
// Repo.EnableCacheBytes).
type VersionCache = store.VersionCache

// CacheStats is a snapshot of a VersionCache's counters and occupancy
// (hits, misses, evictions, resident entries and bytes, configured
// bounds); see Repo.CacheMetrics.
type CacheStats = store.CacheStats

// NewMemStore returns an empty in-memory backend.
func NewMemStore() *MemStore { return store.NewMemStore() }

// OpenObjectStore creates (if needed) and opens a filesystem backend.
func OpenObjectStore(dir string) (*ObjectStore, error) { return store.Open(dir) }

// Repo is the prototype dataset version management system. Optimize is
// copy-on-write: readers keep checking out while a re-layout solves, and
// the new layout is swapped in under a brief write lock with a conflict
// check against mid-solve commits (ErrOptimizeConflict after bounded
// retries).
type Repo = repo.Repo

// ErrOptimizeConflict is returned by Repo.Optimize when its layout swap
// kept losing to concurrent commits and the bounded retries ran out.
var ErrOptimizeConflict = repo.ErrOptimizeConflict

// GCResult reports one Repo.GC mark-and-sweep pass over the blob store:
// blobs scanned, blobs referenced by the current layout (or protected by
// an in-flight optimize build), and orphans deleted.
type GCResult = repo.GCResult

// JobManager runs background optimizations with bounded concurrency; the
// HTTP server uses one for POST /optimize?async=1 and the /jobs API.
type JobManager = jobs.Manager

// JobSnapshot is a race-free copy of one background job's state.
type JobSnapshot = jobs.Snapshot

// JobState is a background job's lifecycle position.
type JobState = jobs.State

// JobRunner is the function a background job executes.
type JobRunner = jobs.Runner

// Background job states: pending → running → done | failed | canceled.
const (
	JobPending  = jobs.StatePending
	JobRunning  = jobs.StateRunning
	JobDone     = jobs.StateDone
	JobFailed   = jobs.StateFailed
	JobCanceled = jobs.StateCanceled
)

// ErrUnknownJob marks a reference to a job id the manager never issued.
var ErrUnknownJob = jobs.ErrUnknownJob

// NewJobManager returns a manager executing at most workers jobs at once
// (≤ 0 selects the default).
func NewJobManager(workers int) *JobManager { return jobs.NewManager(workers) }

// VersionInfo is one committed version's record.
type VersionInfo = repo.VersionInfo

// OptimizeOptions configure Repo.Optimize.
type OptimizeOptions = repo.OptimizeOptions

// Optimization objectives for Repo.Optimize.
const (
	MinStorageObjective    = repo.MinStorageObjective
	SumRecreationObjective = repo.SumRecreationObjective
	MaxRecreationObjective = repo.MaxRecreationObjective
)

// InitRepo creates a filesystem-backed repository at dir.
func InitRepo(dir string) (*Repo, error) { return repo.Init(dir) }

// OpenRepo opens an existing filesystem-backed repository.
func OpenRepo(dir string) (*Repo, error) { return repo.Open(dir) }

// InitRepoBackend creates a repository over an arbitrary backend (which
// must also implement MetaStore).
func InitRepoBackend(b Backend) (*Repo, error) { return repo.InitBackend(b) }

// OpenRepoBackend opens an existing repository from an arbitrary backend.
func OpenRepoBackend(b Backend) (*Repo, error) { return repo.OpenBackend(b) }

// AccessStats is the per-version access telemetry (decaying counters)
// behind workload-aware optimization; every Repo maintains one and
// persists it through the backend's MetaStore. Reach it via
// Repo.AccessStats.
type AccessStats = store.AccessStats

// VersionAccess is one version's decayed access count, as returned by
// Repo.HotVersions.
type VersionAccess = store.VersionAccess

// AutotunePolicy configures the auto-optimization loop: how often to
// evaluate, the commit-count and Φ-drift thresholds that trigger a
// background re-layout, the debounce/backoff pacing, and the solver auto
// jobs run.
type AutotunePolicy = autotune.Policy

// AutotuneStatus is a race-free copy of the policy engine's externally
// visible state (trigger inputs, job counts, last outcome).
type AutotuneStatus = autotune.Status

// AutotuneEngine watches a repository and submits background re-layouts
// through a job manager when its policy triggers. The HTTP server runs one
// when started with the autotune option; embedders can drive their own.
type AutotuneEngine = autotune.Engine

// NewAutotuneEngine returns an engine evaluating p against r, submitting
// jobs through m. Start its loop with Run, or call Tick directly.
func NewAutotuneEngine(r *Repo, m *JobManager, p AutotunePolicy) *AutotuneEngine {
	return autotune.New(r, m, p)
}

// Preset names the paper's evaluation datasets (DC, LC, BF, LF).
type Preset = workload.Preset

// The four evaluation datasets of §5.1.
const (
	DC = workload.DC
	LC = workload.LC
	BF = workload.BF
	LF = workload.LF
)

// BuildWorkload constructs a preset evaluation dataset at a given scale.
func BuildWorkload(p Preset, n int, directed bool, seed int64) (*Matrix, error) {
	return workload.Build(p, n, directed, seed)
}

// Zipf returns Zipfian access frequencies for workload-aware optimization.
func Zipf(n int, exponent float64, seed int64) []float64 {
	return workload.Zipf(n, exponent, seed)
}
