// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5) at bench scale, plus ablation benchmarks for the design choices
// called out in DESIGN.md §4. Run:
//
//	go test -bench=. -benchmem
//
// Full-scale experiment output (the paper-shaped tables) comes from
// cmd/vbench; these benchmarks time the same code paths at a size that
// keeps -bench runs minutes, not hours, and report domain metrics
// (storage ratios, recreation ratios) via b.ReportMetric.
package versiondb_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"versiondb/internal/bench"
	"versiondb/internal/delta"
	"versiondb/internal/graph"
	"versiondb/internal/repo"
	"versiondb/internal/solve"
	"versiondb/internal/store"
	"versiondb/internal/workload"
)

// benchScale keeps one bench iteration well under a second.
func benchScale() bench.Scale {
	return bench.Scale{DC: 150, LC: 150, BF: 80, LF: 50, SweepPoints: 4, Seed: 1}
}

func BenchmarkFig12DatasetProperties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig12(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Report the paper's headline ratio on DC: MCA Σ-recreation vs
			// the SPT minimum.
			b.ReportMetric(rows[0].MCASumR/rows[0].SPTSumR, "DC-MCA/SPT-sumR")
		}
	}
}

func BenchmarkFig13DirectedSumRecreation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig13(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			sub := fig.Subplots[0] // DC
			lmg := sub.Curves[0].Points
			b.ReportMetric(lmg[0].SumR/lmg[len(lmg)-1].SumR, "DC-LMG-sumR-drop")
		}
	}
}

func BenchmarkFig14DirectedMaxRecreation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig14(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15Undirected(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig15(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16WorkloadAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig16(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			gaps, err := bench.Fig16Gap(fig)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(gaps["DC"], "DC-plain/aware")
		}
	}
}

func BenchmarkFig17LMGRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig17(benchScale(), []int{40, 80}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2ExactVsMP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2([]int{15}, 3, 1, solve.ExactOptions{MaxNodes: 2_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[len(rows)-1].MPStorage/rows[len(rows)-1].ExactStorage, "MP/exact")
		}
	}
}

func BenchmarkSec52Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Sec52(25, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var svn, mca float64
			for _, r := range rows {
				switch r.System {
				case "SVN (skip-deltas)":
					svn = r.StoredBytes
				case "MCA":
					mca = r.StoredBytes
				}
			}
			b.ReportMetric(svn/mca, "SVN/MCA")
		}
	}
}

// --- Serving path: checkout cache ------------------------------------------

// chainRepo commits n versions in a line onto an in-memory backend, so the
// deepest version sits behind an (n-1)-delta chain.
func chainRepo(b *testing.B, n int) *repo.Repo {
	b.Helper()
	r, err := repo.InitBackend(store.NewMemStore())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	lines := make([]string, 60)
	for i := range lines {
		lines[i] = fmt.Sprintf("row-%d,%d,%d", i, rng.Intn(1000), rng.Intn(1000))
	}
	for v := 0; v < n; v++ {
		if v > 0 {
			for k := 0; k < 3; k++ {
				lines[rng.Intn(len(lines))] = fmt.Sprintf("edit-%d-%d,%d", v, k, rng.Intn(1000))
			}
		}
		var buf bytes.Buffer
		for _, l := range lines {
			buf.WriteString(l)
			buf.WriteByte('\n')
		}
		if _, err := r.Commit(repo.DefaultBranch, buf.Bytes(), "v"); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// BenchmarkCheckoutHotVsCold shows the LRU cache removing delta-chain
// replay on repeat checkouts: cold pays the full chain in delta
// applications every iteration, hot pays it once and then serves from the
// cache (deltas/op → 0).
func BenchmarkCheckoutHotVsCold(b *testing.B) {
	const versions = 24
	for _, tc := range []struct {
		name  string
		cache int
	}{
		{"cold", 0},
		{"hot", 8},
	} {
		b.Run(tc.name, func(b *testing.B) {
			r := chainRepo(b, versions)
			r.EnableCache(tc.cache)
			start := r.DeltaApplications()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Checkout(versions - 1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			applied := r.DeltaApplications() - start
			recordServing(b, map[string]float64{"deltas/op": float64(applied) / float64(b.N)})
			if tc.cache > 0 && applied > versions-1 {
				b.Fatalf("hot path applied %d deltas across %d checkouts; cache not effective", applied, b.N)
			}
		})
	}
}

// --- Core-solver microbenchmarks on the DC workload -------------------------

func dcInstance(b *testing.B, n int, directed bool) *solve.Instance {
	b.Helper()
	m, err := workload.Build(workload.DC, n, directed, 1)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := solve.NewInstance(m)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

func BenchmarkMCADirected500(b *testing.B) {
	inst := dcInstance(b, 500, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve.MinStorage(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPTDirected500(b *testing.B) {
	inst := dcInstance(b, 500, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve.MinRecreation(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLMG500(b *testing.B) {
	inst := dcInstance(b, 500, true)
	mst, err := solve.MinStorage(inst)
	if err != nil {
		b.Fatal(err)
	}
	spt, err := solve.MinRecreation(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve.LMG(inst, solve.LMGOptions{Budget: 3 * mst.Storage, MST: mst, SPT: spt}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMP500(b *testing.B) {
	inst := dcInstance(b, 500, true)
	mst, err := solve.MinStorage(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve.MP(inst, mst.MaxR); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLAST500(b *testing.B) {
	inst := dcInstance(b, 500, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve.LAST(inst, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGitH500(b *testing.B) {
	inst := dcInstance(b, 500, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve.GitH(inst, solve.GitHOptions{Window: 10, MaxDepth: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverRegistry sweeps every registered solver through the
// unified Solve API on a mid-size LC workload, so the perf trajectory
// captures per-solver cost uniformly (and catches regressions introduced by
// registry dispatch itself). The exact solver runs under a node cap — the
// point is dispatch + search cost at fixed work, not optimality.
func BenchmarkSolverRegistry(b *testing.B) {
	m, err := workload.Build(workload.LC, 300, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := solve.NewInstance(m)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	mst, err := solve.Solve(ctx, inst, solve.Request{Solver: "mst"})
	if err != nil {
		b.Fatal(err)
	}
	for _, info := range solve.Solvers() {
		req := solve.Request{Solver: info.Name}
		switch info.Knob {
		case solve.KnobBudget:
			req.Budget = mst.Storage * 1.5
		case solve.KnobThetaMax:
			req.Theta = mst.MaxR
		case solve.KnobThetaSum:
			req.Theta = mst.SumR
		case solve.KnobAlpha:
			req.Alpha = 2
		}
		if info.Name == "exact" {
			req.MaxNodes = 100_000
		}
		b.Run(info.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := solve.Solve(ctx, inst, req)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Storage/mst.Storage, "storage/minΔ")
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §4) ------------------------------------------------

// Heap choice: Dijkstra over the DC augmented graph with binary vs pairing
// heaps (the O(E log V) vs O(E + V log V) discussion of §3).
func BenchmarkAblationHeapBinary(b *testing.B)  { benchHeap(b, graph.BinaryHeap) }
func BenchmarkAblationHeapPairing(b *testing.B) { benchHeap(b, graph.PairingHeap) }

func benchHeap(b *testing.B, kind graph.HeapKind) {
	inst := dcInstance(b, 500, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.SPT(inst.G, solve.Root, graph.ByRecreate, kind); err != nil {
			b.Fatal(err)
		}
	}
}

// LMG subtree maintenance: O(V²) incremental vs the naive O(V³) variant.
func BenchmarkAblationLMGSubtreeFast(b *testing.B)  { benchLMGSubtree(b, false) }
func BenchmarkAblationLMGSubtreeNaive(b *testing.B) { benchLMGSubtree(b, true) }

func benchLMGSubtree(b *testing.B, naive bool) {
	// LC's mostly-linear history yields deep storage trees, where the
	// O(V²) incremental maintenance separates from the naive walk (on
	// shallow DC trees the naive walk's smaller constants win).
	m, err := workload.Build(workload.LC, 400, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := solve.NewInstance(m)
	if err != nil {
		b.Fatal(err)
	}
	mst, err := solve.MinStorage(inst)
	if err != nil {
		b.Fatal(err)
	}
	spt, err := solve.MinRecreation(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := solve.LMG(inst, solve.LMGOptions{
			Budget: 3 * mst.Storage, NaiveSubtree: naive, MST: mst, SPT: spt,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// GitH depth bias: with vs without the (d − depth) divisor of Appendix A.
func BenchmarkAblationGitHDepthBias(b *testing.B)   { benchGitHBias(b, false) }
func BenchmarkAblationGitHNoDepthBias(b *testing.B) { benchGitHBias(b, true) }

func benchGitHBias(b *testing.B, noBias bool) {
	inst := dcInstance(b, 500, true)
	b.ResetTimer()
	var maxR float64
	for i := 0; i < b.N; i++ {
		s, err := solve.GitH(inst, solve.GitHOptions{Window: 10, MaxDepth: 10, NoDepthBias: noBias})
		if err != nil {
			b.Fatal(err)
		}
		maxR = s.MaxR
	}
	b.ReportMetric(maxR, "maxR")
}

// Delta revelation radius: how the k-hop reveal rule affects the minimum
// storage the MCA can find (more revealed deltas → more redundancy caught).
func BenchmarkAblationReveal2Hop(b *testing.B)  { benchReveal(b, 2) }
func BenchmarkAblationReveal5Hop(b *testing.B)  { benchReveal(b, 5) }
func BenchmarkAblationReveal10Hop(b *testing.B) { benchReveal(b, 10) }

func benchReveal(b *testing.B, hops int) {
	vg, err := workload.Generate(workload.GraphParams{
		Commits: 300, BranchInterval: 2, BranchProb: 0.9,
		BranchLimit: 4, BranchLength: 3, MergeProb: 0.3, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var storage float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := vg.SynthCosts(workload.CostParams{
			BaseSize: 350e3, SizeDrift: 0.02, EditFrac: 0.02, EditFracVar: 0.5,
			RevealHops: hops, Directed: true, ReverseAsym: 1.4, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		inst, err := solve.NewInstance(m)
		if err != nil {
			b.Fatal(err)
		}
		s, err := solve.MinStorage(inst)
		if err != nil {
			b.Fatal(err)
		}
		storage = s.Storage
	}
	b.ReportMetric(storage/1e6, "MCA-MB")
}

// Delta mechanisms: line diff vs XOR vs compressed diff on real content
// (the §2.1 delta-variant dimension).
func contentPair(b *testing.B) ([]byte, []byte) {
	b.Helper()
	vg, err := workload.Generate(workload.GraphParams{Commits: 2, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	c, err := vg.Materialize(workload.ContentParams{Rows: 500, Cols: 8, OpsPerEdge: 4, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	return c.Payload[0], c.Payload[1]
}

func BenchmarkDeltaLineDiff(b *testing.B) {
	a, c := contentPair(b)
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		d := delta.DiffLines(a, c)
		size = len(delta.Encode(d, true))
	}
	b.ReportMetric(float64(size), "delta-bytes")
}

func BenchmarkDeltaXOR(b *testing.B) {
	a, c := contentPair(b)
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		size = len(delta.XOR(a, c))
	}
	b.ReportMetric(float64(size), "delta-bytes")
}

func BenchmarkDeltaCompressedDiff(b *testing.B) {
	a, c := contentPair(b)
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		d := delta.DiffLines(a, c)
		size = len(delta.Compress(delta.Encode(d, true)))
	}
	b.ReportMetric(float64(size), "delta-bytes")
}

func BenchmarkDeltaApplyEncoded(b *testing.B) {
	a, c := contentPair(b)
	enc := delta.Encode(delta.DiffLines(a, c), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := delta.ApplyEncoded(enc, a); err != nil {
			b.Fatal(err)
		}
	}
}
