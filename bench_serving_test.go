// Serving-path benchmarks: the fast lane a production deployment actually
// feels — concurrent cold checkouts coalescing onto one chain replay,
// byte-budgeted cache behavior under skewed payload sizes, and the O(n)
// memoized Φ accounting the autotune drift trigger polls. Run:
//
//	go test -bench 'Serving|ConcurrentColdCheckout|WeightedPhi|CheckoutHotVsCold' -benchtime=1x -run xxx .
//
// With BENCH_SERVING_OUT=BENCH_serving.json the run writes a small JSON
// report of every serving benchmark's metrics — the start of the perf
// trajectory CI uploads as an artifact on every push.
package versiondb_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// servingReport collects metrics from serving benchmarks for the
// BENCH_serving.json trajectory file; guarded by servingMu since
// sub-benchmarks may run from different goroutines.
var (
	servingMu     sync.Mutex
	servingResult = map[string]map[string]float64{}
)

// recordServing files one benchmark's metrics into the report (and
// reports them to the benchmark framework as well).
func recordServing(b *testing.B, metrics map[string]float64) {
	b.Helper()
	row := map[string]float64{
		"ns_per_op": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
	}
	for k, v := range metrics {
		b.ReportMetric(v, k)
		row[k] = v
	}
	servingMu.Lock()
	servingResult[b.Name()] = row
	servingMu.Unlock()
}

// writeServingReport renders the collected metrics as deterministic JSON.
func writeServingReport(path string) error {
	servingMu.Lock()
	defer servingMu.Unlock()
	if len(servingResult) == 0 {
		return nil // -bench was not run; leave any existing report alone
	}
	names := make([]string, 0, len(servingResult))
	for n := range servingResult {
		names = append(names, n)
	}
	sort.Strings(names)
	type entry struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	}
	report := struct {
		Go      string  `json:"go"`
		Cpus    int     `json:"cpus"`
		Results []entry `json:"results"`
	}{Go: runtime.Version(), Cpus: runtime.NumCPU()}
	for _, n := range names {
		report.Results = append(report.Results, entry{Name: n, Metrics: servingResult[n]})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func TestMain(m *testing.M) {
	code := m.Run()
	if out := os.Getenv("BENCH_SERVING_OUT"); out != "" && code == 0 {
		if err := writeServingReport(out); err != nil {
			fmt.Fprintln(os.Stderr, "writing serving report:", err)
			code = 1
		}
	}
	os.Exit(code)
}

// BenchmarkConcurrentColdCheckout is the thundering-herd scenario: many
// goroutines demand the same cold version at once. Singleflight
// materialization coalesces them onto one chain replay — deltas/op stays
// at one chain's worth (≈ versions-1) instead of workers × chain. The
// exact-coalescing property (one replay, asserted deterministically with
// a gated backend) is proved by TestConcurrentColdCheckoutsCoalesce in
// internal/store; this benchmark tracks the wall-clock and I/O trajectory.
func BenchmarkConcurrentColdCheckout(b *testing.B) {
	const versions = 24
	for _, workers := range []int{4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := chainRepo(b, versions)
			start := r.DeltaApplications()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// A fresh byte-budgeted cache makes every iteration cold
				// without rebuilding the repository.
				r.EnableCacheBytes(1 << 20)
				b.StartTimer()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, err := r.Checkout(versions - 1); err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			deltasPerOp := float64(r.DeltaApplications()-start) / float64(b.N)
			recordServing(b, map[string]float64{
				"deltas/op": deltasPerOp,
				"workers":   float64(workers),
			})
			// Coalescing bound: one chain replay per cold iteration, not
			// one per worker. (Assertion lives here too so the perf
			// trajectory cannot silently regress into herd behavior.)
			if deltasPerOp > float64(versions) {
				b.Fatalf("deltas/op = %.1f, want ≤ %d (one chain replay per iteration)", deltasPerOp, versions)
			}
		})
	}
}

// BenchmarkWeightedPhi times the Φ-drift metric the autotune engine polls
// on a timer. The memoized cold-cost DP makes it O(n) with near-zero
// allocations; the memo-vs-walk gap itself is measured by
// BenchmarkColdCostAccounting in internal/store.
func BenchmarkWeightedPhi(b *testing.B) {
	for _, versions := range []int{64, 256} {
		b.Run(fmt.Sprintf("versions=%d", versions), func(b *testing.B) {
			r := chainRepo(b, versions)
			// Skew the telemetry so the weighted path (not the uniform
			// shortcut) is exercised.
			for i := 0; i < 32; i++ {
				if _, err := r.Checkout(versions - 1 - i%8); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var phi float64
			for i := 0; i < b.N; i++ {
				phi = r.WeightedPhi()
			}
			b.StopTimer()
			if phi <= 0 {
				b.Fatal("WeightedPhi returned a non-positive estimate")
			}
			recordServing(b, map[string]float64{"phi_bytes": phi})
		})
	}
}

// BenchmarkByteBudgetServing drives a skewed checkout workload through a
// byte-budgeted cache sized to hold only part of the working set, so
// admission and eviction are continuously exercised — the regime `vmsd
// -cache-bytes` runs in production.
func BenchmarkByteBudgetServing(b *testing.B) {
	const versions = 32
	r := chainRepo(b, versions)
	// Budget ≈ a handful of payloads: the hot head fits, the tail churns.
	r.EnableCacheBytes(8 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := versions - 1 - i%4 // hot head
		if i%7 == 0 {
			v = i % versions // occasional tail scan
		}
		if _, err := r.Checkout(v); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m := r.CacheMetrics()
	if m.BytesResident > m.BudgetBytes {
		b.Fatalf("resident %d bytes exceeds budget %d", m.BytesResident, m.BudgetBytes)
	}
	recordServing(b, map[string]float64{
		"hit_ratio":      m.HitRatio(),
		"resident_bytes": float64(m.BytesResident),
		"evictions":      float64(m.Evictions),
	})
}
