// Serving-path benchmarks: the fast lane a production deployment actually
// feels — concurrent cold checkouts coalescing onto one chain replay,
// byte-budgeted cache behavior under skewed payload sizes, and the O(n)
// memoized Φ accounting the autotune drift trigger polls. Run:
//
//	go test -bench 'Serving|ConcurrentColdCheckout|WeightedPhi|CheckoutHotVsCold|StreamingCheckout' -benchtime=1x -run xxx .
//
// With BENCH_SERVING_OUT=BENCH_serving.json the run writes a small JSON
// report of every serving benchmark's metrics — the start of the perf
// trajectory CI uploads as an artifact on every push.
package versiondb_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"versiondb/internal/bench"
	"versiondb/internal/repo"
	"versiondb/internal/store"
	"versiondb/internal/store/remote"
)

// servingReport collects metrics from serving benchmarks for the
// BENCH_serving.json trajectory file; guarded by servingMu since
// sub-benchmarks may run from different goroutines.
var (
	servingMu     sync.Mutex
	servingResult = map[string]map[string]float64{}
)

// recordServing files one benchmark's metrics into the report (and
// reports them to the benchmark framework as well).
func recordServing(b *testing.B, metrics map[string]float64) {
	b.Helper()
	row := map[string]float64{
		"ns_per_op": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
	}
	for k, v := range metrics {
		b.ReportMetric(v, k)
		row[k] = v
	}
	servingMu.Lock()
	servingResult[b.Name()] = row
	servingMu.Unlock()
}

// writeServingReport renders the collected metrics as deterministic JSON.
func writeServingReport(path string) error {
	servingMu.Lock()
	defer servingMu.Unlock()
	if len(servingResult) == 0 {
		return nil // -bench was not run; leave any existing report alone
	}
	names := make([]string, 0, len(servingResult))
	for n := range servingResult {
		names = append(names, n)
	}
	sort.Strings(names)
	type entry struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	}
	report := struct {
		Go      string  `json:"go"`
		Cpus    int     `json:"cpus"`
		Results []entry `json:"results"`
	}{Go: runtime.Version(), Cpus: runtime.NumCPU()}
	for _, n := range names {
		report.Results = append(report.Results, entry{Name: n, Metrics: servingResult[n]})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func TestMain(m *testing.M) {
	code := m.Run()
	if out := os.Getenv("BENCH_SERVING_OUT"); out != "" && code == 0 {
		if err := writeServingReport(out); err != nil {
			fmt.Fprintln(os.Stderr, "writing serving report:", err)
			code = 1
		}
	}
	os.Exit(code)
}

// BenchmarkConcurrentColdCheckout is the thundering-herd scenario: many
// goroutines demand the same cold version at once. Singleflight
// materialization coalesces them onto one chain replay — deltas/op stays
// at one chain's worth (≈ versions-1) instead of workers × chain. The
// exact-coalescing property (one replay, asserted deterministically with
// a gated backend) is proved by TestConcurrentColdCheckoutsCoalesce in
// internal/store; this benchmark tracks the wall-clock and I/O trajectory.
func BenchmarkConcurrentColdCheckout(b *testing.B) {
	const versions = 24
	for _, workers := range []int{4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := chainRepo(b, versions)
			start := r.DeltaApplications()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// A fresh byte-budgeted cache makes every iteration cold
				// without rebuilding the repository.
				r.EnableCacheBytes(1 << 20)
				b.StartTimer()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, err := r.Checkout(versions - 1); err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			deltasPerOp := float64(r.DeltaApplications()-start) / float64(b.N)
			recordServing(b, map[string]float64{
				"deltas/op": deltasPerOp,
				"workers":   float64(workers),
			})
			// Coalescing bound: one chain replay per cold iteration, not
			// one per worker. (Assertion lives here too so the perf
			// trajectory cannot silently regress into herd behavior.)
			if deltasPerOp > float64(versions) {
				b.Fatalf("deltas/op = %.1f, want ≤ %d (one chain replay per iteration)", deltasPerOp, versions)
			}
		})
	}
}

// BenchmarkWeightedPhi times the Φ-drift metric the autotune engine polls
// on a timer. The memoized cold-cost DP makes it O(n) with near-zero
// allocations; the memo-vs-walk gap itself is measured by
// BenchmarkColdCostAccounting in internal/store.
func BenchmarkWeightedPhi(b *testing.B) {
	for _, versions := range []int{64, 256} {
		b.Run(fmt.Sprintf("versions=%d", versions), func(b *testing.B) {
			r := chainRepo(b, versions)
			// Skew the telemetry so the weighted path (not the uniform
			// shortcut) is exercised.
			for i := 0; i < 32; i++ {
				if _, err := r.Checkout(versions - 1 - i%8); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var phi float64
			for i := 0; i < b.N; i++ {
				phi = r.WeightedPhi()
			}
			b.StopTimer()
			if phi <= 0 {
				b.Fatal("WeightedPhi returned a non-positive estimate")
			}
			recordServing(b, map[string]float64{"phi_bytes": phi})
		})
	}
}

// BenchmarkByteBudgetServing drives a skewed checkout workload through a
// byte-budgeted cache sized to hold only part of the working set, so
// admission and eviction are continuously exercised — the regime `vmsd
// -cache-bytes` runs in production.
func BenchmarkByteBudgetServing(b *testing.B) {
	const versions = 32
	r := chainRepo(b, versions)
	// Budget ≈ a handful of payloads: the hot head fits, the tail churns.
	r.EnableCacheBytes(8 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := versions - 1 - i%4 // hot head
		if i%7 == 0 {
			v = i % versions // occasional tail scan
		}
		if _, err := r.Checkout(v); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m := r.CacheMetrics()
	if m.BytesResident > m.BudgetBytes {
		b.Fatalf("resident %d bytes exceeds budget %d", m.BytesResident, m.BudgetBytes)
	}
	recordServing(b, map[string]float64{
		"hit_ratio":      m.HitRatio(),
		"resident_bytes": float64(m.BytesResident),
		"evictions":      float64(m.Evictions),
	})
}

// remoteChainRepo builds a bigChainRepo-style history on the chunked
// remote tier: an in-process object server with optional fault knobs and
// a repository whose backend is a remote client against it.
func remoteChainRepo(b *testing.B, versions, rows int, opts remote.Options, tune func(*remote.Server)) (*repo.Repo, *remote.Store) {
	b.Helper()
	srv := remote.NewServer()
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	if opts.HTTPClient == nil {
		opts.HTTPClient = ts.Client()
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = time.Millisecond
	}
	client := remote.New(ts.URL, opts)
	r, err := repo.InitBackend(client)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	lines := make([]string, rows)
	for i := range lines {
		lines[i] = fmt.Sprintf("row-%06d,%016x,%016x", i, rng.Uint64(), rng.Uint64())
	}
	var buf bytes.Buffer
	for v := 0; v < versions; v++ {
		if v > 0 {
			for k := 0; k < 4; k++ {
				lines[rng.Intn(rows)] = fmt.Sprintf("edit-%04d-%d,%016x", v, k, rng.Uint64())
			}
		}
		buf.Reset()
		for _, l := range lines {
			buf.WriteString(l)
			buf.WriteByte('\n')
		}
		if _, err := r.Commit(repo.DefaultBranch, append([]byte(nil), buf.Bytes()...), "v"); err != nil {
			b.Fatal(err)
		}
	}
	if tune != nil {
		tune(srv)
	}
	return r, client
}

// BenchmarkRemoteTieredCheckout measures the three regimes of the remote
// tier on the same delta-chain checkout: every chunk paid over HTTP
// (cold-remote), the near-tier chunk cache absorbing repeat reads
// (near-tier-hit), and a periodically slow object server with hedged
// reads racing the stragglers (hedged-slow-chunk). The recorded chunk,
// hit and hedge counters feed BENCH_serving.json alongside the latency.
func BenchmarkRemoteTieredCheckout(b *testing.B) {
	const versions, rows = 8, 4000
	checkoutAll := func(b *testing.B, r *repo.Repo) {
		b.Helper()
		for v := 0; v < versions; v++ {
			if _, err := r.Checkout(v); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cold-remote", func(b *testing.B) {
		r, client := remoteChainRepo(b, versions, rows, remote.Options{
			CacheBytes: -1, // no near tier: every chunk is an HTTP fetch
			HedgeAfter: -1,
		}, nil)
		start := client.TierStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			checkoutAll(b, r)
		}
		b.StopTimer()
		st := client.TierStats()
		recordServing(b, map[string]float64{
			"chunk_fetches/op": float64(st.ChunkFetches-start.ChunkFetches) / float64(b.N),
			"fetched_bytes/op": float64(st.BytesFetched-start.BytesFetched) / float64(b.N),
			"dedup_ratio":      st.DedupRatio(),
		})
	})
	b.Run("near-tier-hit", func(b *testing.B) {
		r, client := remoteChainRepo(b, versions, rows, remote.Options{
			HedgeAfter: -1, // default 32 MiB cache holds the whole chain
		}, nil)
		checkoutAll(b, r) // warm the near tier
		start := client.TierStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			checkoutAll(b, r)
		}
		b.StopTimer()
		st := client.TierStats()
		fetches := float64(st.ChunkFetches - start.ChunkFetches)
		hits := float64(st.ChunkHits - start.ChunkHits)
		recordServing(b, map[string]float64{
			"chunk_fetches/op": fetches / float64(b.N),
			"hit_ratio":        hits / (hits + fetches),
		})
		if fetches != 0 {
			b.Fatalf("warm near tier still fetched %v chunks over HTTP", fetches)
		}
	})
	b.Run("hedged-slow-chunk", func(b *testing.B) {
		r, client := remoteChainRepo(b, versions, rows, remote.Options{
			CacheBytes: -1,
			HedgeAfter: 2 * time.Millisecond,
		}, func(srv *remote.Server) {
			srv.SetSlowEvery(5, 50*time.Millisecond) // every 5th GET stalls
		})
		start := client.TierStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			checkoutAll(b, r)
		}
		b.StopTimer()
		st := client.TierStats()
		recordServing(b, map[string]float64{
			"chunk_fetches/op": float64(st.ChunkFetches-start.ChunkFetches) / float64(b.N),
			"hedged/op":        float64(st.Hedged-start.Hedged) / float64(b.N),
			"hedge_wins/op":    float64(st.HedgeWins-start.HedgeWins) / float64(b.N),
		})
	})
}

// BenchmarkReplicaScaleOut measures horizontal read scale-out: the same
// Zipf checkout workload served through the vmsproxy consistent-hash
// router at 1, 2, and 4 metalog-tailing replicas, each with the same
// per-replica cache budget. Scale-out pays because adding replicas adds
// aggregate cache: the hot set thrashes one replica's LRU but fits across
// two. The 2-vs-1 throughput ratio is asserted ≥ 1.6×, so the scaling
// property is CI-enforced alongside the recorded trajectory.
func BenchmarkReplicaScaleOut(b *testing.B) {
	sc := bench.DefaultReplicaScale()
	tput := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			var row bench.ReplicaRow
			for i := 0; i < b.N; i++ {
				var err error
				row, err = bench.ReplicasOne(sc, n)
				if err != nil {
					b.Fatal(err)
				}
			}
			tput[n] = row.Throughput
			recordServing(b, map[string]float64{
				"throughput_rps": row.Throughput,
				"p50_ms":         float64(row.P50) / float64(time.Millisecond),
				"p99_ms":         float64(row.P99) / float64(time.Millisecond),
				"hit_ratio":      row.HitRatio,
				"replica_share":  row.ReplicaShare,
			})
		})
	}
	if ratio := tput[2] / tput[1]; ratio < 1.6 {
		b.Fatalf("2 replicas serve only %.2fx the checkout throughput of 1 (want ≥ 1.6x): %.0f vs %.0f rps",
			ratio, tput[2], tput[1])
	}
}

// bigChainRepo commits versions in a line where every payload is rows
// ~100-byte CSV lines (so rows ≈ payload KiB × 10), each version editing a
// handful of lines — the regime where a delta chain is deep or a payload is
// large while the deltas stay small. The checkout cache stays disabled so
// every measured op pays the full reconstruction.
func bigChainRepo(b *testing.B, versions, rows int) *repo.Repo {
	b.Helper()
	r, err := repo.InitBackend(store.NewMemStore())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	lines := make([]string, rows)
	for i := range lines {
		lines[i] = fmt.Sprintf("row-%08d,%016x,%016x,%016x,%016x,%016x", i, rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64())
	}
	var buf bytes.Buffer
	for v := 0; v < versions; v++ {
		if v > 0 {
			for k := 0; k < 4; k++ {
				lines[rng.Intn(rows)] = fmt.Sprintf("edit-%04d-%d,%016x", v, k, rng.Uint64())
			}
		}
		buf.Reset()
		for _, l := range lines {
			buf.WriteString(l)
			buf.WriteByte('\n')
		}
		if _, err := r.Commit(repo.DefaultBranch, append([]byte(nil), buf.Bytes()...), "v"); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// memPerOp runs fn b.N times and returns (bytes/op, allocs/op) measured via
// runtime.MemStats deltas — unlike b.ReportAllocs this lets the benchmark
// assert on the numbers, which is how the streaming-vs-buffered memory gap
// is kept from regressing silently.
func memPerOp(b *testing.B, fn func()) (bytesOp, allocsOp float64) {
	b.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(b.N),
		float64(after.Mallocs-before.Mallocs) / float64(b.N)
}

// BenchmarkStreamingCheckout pits the zero-copy checkout stream against the
// buffered path on the two shapes that hurt it most: one large payload
// behind a short chain (per-request memory should be windows, not the
// payload) and a deep chain over a medium payload (memory should stay flat
// in chain depth, one bufio window per stage). The buffered run records its
// bytes/op first; the streaming run then asserts the ≥10× separation on the
// large payload, so the memory property is CI-enforced, not just plotted.
func BenchmarkStreamingCheckout(b *testing.B) {
	scenarios := []struct {
		name     string
		versions int
		rows     int
		assert   bool // streaming must beat buffered ≥10× in bytes/op
	}{
		{"payload=8MiB_chain=4", 4, 84000, true},
		{"payload=1MiB_chain=48", 48, 10500, false},
	}
	for _, sc := range scenarios {
		r := bigChainRepo(b, sc.versions, sc.rows)
		tip := sc.versions - 1
		payload, err := r.Checkout(tip)
		if err != nil {
			b.Fatal(err)
		}
		wantLen := int64(len(payload))
		var bufferedBytes float64
		b.Run(sc.name+"/buffered", func(b *testing.B) {
			bytesOp, allocsOp := memPerOp(b, func() {
				p, err := r.Checkout(tip)
				if err != nil || int64(len(p)) != wantLen {
					b.Fatalf("Checkout: %v (len %d)", err, len(p))
				}
			})
			bufferedBytes = bytesOp
			recordServing(b, map[string]float64{"bytes/op": bytesOp, "allocs/op": allocsOp})
		})
		b.Run(sc.name+"/streaming", func(b *testing.B) {
			window := make([]byte, 64<<10)
			bytesOp, allocsOp := memPerOp(b, func() {
				rc, size, err := r.CheckoutStream(tip)
				if err != nil {
					b.Fatalf("CheckoutStream: %v", err)
				}
				n, err := io.CopyBuffer(io.Discard, rc, window)
				rc.Close()
				if err != nil || n != wantLen || size != wantLen {
					b.Fatalf("drain: %v (%d of %d bytes, size %d)", err, n, wantLen, size)
				}
			})
			recordServing(b, map[string]float64{"bytes/op": bytesOp, "allocs/op": allocsOp})
			if sc.assert && bufferedBytes > 0 && bytesOp*10 > bufferedBytes {
				b.Fatalf("streaming allocates %.0f B/op vs buffered %.0f B/op — less than the required 10× separation", bytesOp, bufferedBytes)
			}
		})
	}
}
