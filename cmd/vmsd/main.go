// Command vmsd serves a dataset repository over HTTP — the server half of
// the paper's prototype version management system.
//
// Usage:
//
//	vmsd -dir /path/to/repo [-addr :7420] [-init] [-backend fs|mem] [-cache N] [-jobs N]
//
// The -backend flag selects the physical store: "fs" (default) persists
// loose objects and packfiles under -dir; "mem" serves a fresh
// concurrency-safe in-memory repository (no -dir needed, contents die with
// the process — useful for caching tiers and load tests). -cache bounds
// the LRU of materialized versions that lets hot checkouts skip
// delta-chain replay. -jobs bounds how many background optimize jobs
// (POST /optimize?async=1) run concurrently; excess submissions queue.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"versiondb/internal/repo"
	"versiondb/internal/store"
	"versiondb/internal/vcs"
)

func main() {
	dir := flag.String("dir", "", "repository directory (fs backend)")
	addr := flag.String("addr", ":7420", "listen address")
	doInit := flag.Bool("init", false, "initialize a fresh repository at -dir")
	backend := flag.String("backend", "fs", "storage backend: fs or mem")
	cache := flag.Int("cache", 64, "checkout LRU capacity in versions (0 disables)")
	jobWorkers := flag.Int("jobs", 0, "max concurrent background optimize jobs (0 = default)")
	flag.Parse()
	var (
		r   *repo.Repo
		err error
	)
	switch *backend {
	case "fs":
		if *dir == "" {
			log.Fatal("vmsd: -dir is required with -backend fs")
		}
		if *doInit {
			r, err = repo.Init(*dir)
		} else {
			r, err = repo.Open(*dir)
		}
	case "mem":
		r, err = repo.InitBackend(store.NewMemStore())
	default:
		log.Fatalf("vmsd: unknown backend %q (want fs or mem)", *backend)
	}
	if err != nil {
		log.Fatalf("vmsd: %v", err)
	}
	r.EnableCache(*cache)
	srv := vcs.NewServer(r, vcs.WithJobWorkers(*jobWorkers))
	fmt.Printf("vmsd: serving %s backend on %s (%d versions, cache %d)\n",
		*backend, *addr, r.NumVersions(), *cache)
	// ListenAndServe only ever returns an error; cancel background jobs
	// and wait for them before exiting (log.Fatal would skip defers).
	serveErr := http.ListenAndServe(*addr, srv.Handler())
	srv.Close()
	log.Fatal(serveErr)
}
