// Command vmsd serves a dataset repository over HTTP — the server half of
// the paper's prototype version management system.
//
// Usage:
//
//	vmsd -dir /path/to/repo [-addr :7420] [-init] [-backend fs|mem|remote]
//	     [-remote-url URL] [-hedge-after D] [-remote-cache-bytes B]
//	     [-cache N] [-cache-bytes B] [-jobs N]
//	     [-autotune] [-autotune-interval D] [-autotune-commits N]
//	     [-autotune-drift F] [-autotune-solver S]
//	     [-replica-of PRIMARY_URL]
//
// The -backend flag selects the physical store: "fs" (default) persists
// loose objects and packfiles under -dir; "mem" serves a fresh
// concurrency-safe in-memory repository (no -dir needed, contents die with
// the process — useful for caching tiers and load tests); "remote" (implied
// by -remote-url) stores blobs as content-defined chunks on an S3-style
// object server, fronted by a byte-budget chunk cache (-remote-cache-bytes,
// 0 = 32 MiB default, negative disables) with hedged reads against slow
// chunk fetches (-hedge-after: 0 = adaptive p95, negative disables). GET
// /stats then carries the tier's chunk, hedge and dedup counters and the
// retrieval-cost factor the solvers price recreation at. -cache bounds
// the LRU of materialized versions that lets hot checkouts skip
// delta-chain replay, counted in versions; -cache-bytes bounds it in
// payload bytes instead (a hard memory envelope — payloads larger than
// the whole budget bypass admission) and wins over -cache when both are
// set. GET /stats reports cache bytes, hit ratio, evictions and backend
// blob reads so the budget can be tuned against live traffic. -jobs
// bounds how many background optimize jobs (POST /optimize?async=1) run
// concurrently; excess submissions queue.
//
// -autotune closes the workload-aware loop: every -autotune-interval the
// server compares the access-weighted recreation cost of the current
// layout against the baseline captured at the last re-layout, and submits
// a background re-layout job (solver -autotune-solver, weights derived
// from access telemetry) when at least -autotune-commits commits have
// landed or the weighted cost has drifted by the -autotune-drift fraction.
// Auto jobs are ordinary background jobs: they appear in GET /jobs, and
// GET /stats carries the engine's trigger inputs and last outcome.
//
// -replica-of PRIMARY_URL starts the server as a read-only replica: it
// follows the primary's metadata log over GET /log?from= (long-polled) and
// serves checkouts against the shared blob backend, which must be the same
// storage the primary writes — the same -dir on a shared filesystem, or
// the same -remote-url object server. Replicas reject every write with
// 403, never persist anything, and report their replay cursor in GET
// /stats under "replica". Put a vmsproxy in front of the fleet to route
// checkouts by chain root and writes to the primary.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"versiondb/internal/autotune"
	"versiondb/internal/replication"
	"versiondb/internal/repo"
	"versiondb/internal/store"
	"versiondb/internal/store/remote"
	"versiondb/internal/vcs"
)

func main() {
	dir := flag.String("dir", "", "repository directory (fs backend)")
	addr := flag.String("addr", ":7420", "listen address")
	doInit := flag.Bool("init", false, "initialize a fresh repository at -dir")
	backend := flag.String("backend", "fs", "storage backend: fs, mem, or remote")
	remoteURL := flag.String("remote-url", "", "remote backend: S3-style object server URL (implies -backend remote)")
	hedgeAfter := flag.Duration("hedge-after", 0, "remote backend: hedge a slow chunk fetch after this delay (0 = adaptive p95, negative disables)")
	remoteCacheBytes := flag.Int64("remote-cache-bytes", 0, "remote backend: chunk cache budget in bytes (0 = 32 MiB default, negative disables)")
	cache := flag.Int("cache", 64, "checkout LRU capacity in versions (0 disables)")
	cacheBytes := flag.Int64("cache-bytes", 0, "checkout LRU budget in payload bytes (0 disables; wins over -cache)")
	jobWorkers := flag.Int("jobs", 0, "max concurrent background optimize jobs (0 = default)")
	tune := flag.Bool("autotune", false, "auto-submit background re-layouts from commit/drift triggers")
	tuneInterval := flag.Duration("autotune-interval", 30*time.Second, "how often the autotune policy evaluates")
	tuneCommits := flag.Int("autotune-commits", 16, "re-layout after this many commits (0 disables the commit trigger)")
	tuneDrift := flag.Float64("autotune-drift", 0.25, "re-layout when weighted Φ drifts by this fraction (0 disables the drift trigger)")
	tuneSolver := flag.String("autotune-solver", "lmg", "registry solver auto re-layouts run")
	replicaOf := flag.String("replica-of", "", "primary URL: serve as a read-only replica following its metadata log")
	flag.Parse()
	var (
		r   *repo.Repo
		err error
	)
	if *remoteURL != "" {
		*backend = "remote"
	}
	switch *backend {
	case "fs":
		if *dir == "" {
			log.Fatal("vmsd: -dir is required with -backend fs")
		}
		switch {
		case *replicaOf != "":
			var s store.Backend
			if s, err = store.Open(*dir); err == nil {
				r, err = repo.OpenReplica(s)
			}
		case *doInit:
			r, err = repo.Init(*dir)
		default:
			r, err = repo.Open(*dir)
		}
	case "mem":
		if *replicaOf != "" {
			// A replica must read the primary's blobs; a private in-memory
			// store shares nothing.
			log.Fatal("vmsd: -replica-of needs shared storage (-backend fs or remote)")
		}
		r, err = repo.InitBackend(store.NewMemStore())
	case "remote":
		if *remoteURL == "" {
			log.Fatal("vmsd: -remote-url is required with -backend remote")
		}
		client := remote.New(*remoteURL, remote.Options{
			CacheBytes: *remoteCacheBytes,
			HedgeAfter: *hedgeAfter,
		})
		switch {
		case *replicaOf != "":
			r, err = repo.OpenReplica(client)
		case *doInit:
			r, err = repo.InitBackend(client)
		default:
			r, err = repo.OpenBackend(client)
		}
	default:
		log.Fatalf("vmsd: unknown backend %q (want fs, mem, or remote)", *backend)
	}
	if err != nil {
		log.Fatalf("vmsd: %v", err)
	}
	cacheDesc := fmt.Sprintf("cache %d versions", *cache)
	if *cacheBytes > 0 {
		r.EnableCacheBytes(*cacheBytes)
		cacheDesc = fmt.Sprintf("cache %d bytes", *cacheBytes)
	} else {
		r.EnableCache(*cache)
	}
	opts := []vcs.ServerOption{vcs.WithJobWorkers(*jobWorkers)}
	if *tune {
		opts = append(opts, vcs.WithAutotune(autotune.Policy{
			Interval:        *tuneInterval,
			CommitThreshold: *tuneCommits,
			DriftThreshold:  *tuneDrift,
			Solver:          *tuneSolver,
		}))
	}
	if *replicaOf != "" {
		follower := replication.NewFollower(r, vcs.NewClient(*replicaOf))
		// Catch up once before serving, so the replica does not answer 404
		// for the primary's whole history while the first poll is in
		// flight; a primary that is briefly down is not fatal — the
		// background loop keeps retrying.
		if _, err := follower.Sync(context.Background(), false); err != nil {
			log.Printf("vmsd: initial sync from %s: %v (retrying in background)", *replicaOf, err)
		}
		go func() { _ = follower.Run(context.Background()) }()
		opts = append(opts, vcs.WithReplicaStatus(follower.Status))
	}
	srv := vcs.NewServer(r, opts...)
	role := "serving"
	if *replicaOf != "" {
		role = "replica of " + *replicaOf + ","
	}
	fmt.Printf("vmsd: %s %s backend on %s (%d versions, %s, autotune %v)\n",
		role, *backend, *addr, r.NumVersions(), cacheDesc, *tune)
	// ListenAndServe only ever returns an error; stop the autotune loop,
	// cancel background jobs and wait for them before exiting (log.Fatal
	// would skip defers).
	serveErr := http.ListenAndServe(*addr, srv.Handler())
	srv.Close()
	log.Fatal(serveErr)
}
