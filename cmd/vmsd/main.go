// Command vmsd serves a dataset repository over HTTP — the server half of
// the paper's prototype version management system.
//
// Usage:
//
//	vmsd -dir /path/to/repo [-addr :7420] [-init] [-backend fs|mem|remote]
//	     [-remote-url URL] [-hedge-after D] [-remote-cache-bytes B]
//	     [-cache N] [-cache-bytes B] [-jobs N]
//	     [-autotune] [-autotune-interval D] [-autotune-commits N]
//	     [-autotune-drift F] [-autotune-solver S]
//
// The -backend flag selects the physical store: "fs" (default) persists
// loose objects and packfiles under -dir; "mem" serves a fresh
// concurrency-safe in-memory repository (no -dir needed, contents die with
// the process — useful for caching tiers and load tests); "remote" (implied
// by -remote-url) stores blobs as content-defined chunks on an S3-style
// object server, fronted by a byte-budget chunk cache (-remote-cache-bytes,
// 0 = 32 MiB default, negative disables) with hedged reads against slow
// chunk fetches (-hedge-after: 0 = adaptive p95, negative disables). GET
// /stats then carries the tier's chunk, hedge and dedup counters and the
// retrieval-cost factor the solvers price recreation at. -cache bounds
// the LRU of materialized versions that lets hot checkouts skip
// delta-chain replay, counted in versions; -cache-bytes bounds it in
// payload bytes instead (a hard memory envelope — payloads larger than
// the whole budget bypass admission) and wins over -cache when both are
// set. GET /stats reports cache bytes, hit ratio, evictions and backend
// blob reads so the budget can be tuned against live traffic. -jobs
// bounds how many background optimize jobs (POST /optimize?async=1) run
// concurrently; excess submissions queue.
//
// -autotune closes the workload-aware loop: every -autotune-interval the
// server compares the access-weighted recreation cost of the current
// layout against the baseline captured at the last re-layout, and submits
// a background re-layout job (solver -autotune-solver, weights derived
// from access telemetry) when at least -autotune-commits commits have
// landed or the weighted cost has drifted by the -autotune-drift fraction.
// Auto jobs are ordinary background jobs: they appear in GET /jobs, and
// GET /stats carries the engine's trigger inputs and last outcome.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"versiondb/internal/autotune"
	"versiondb/internal/repo"
	"versiondb/internal/store"
	"versiondb/internal/store/remote"
	"versiondb/internal/vcs"
)

func main() {
	dir := flag.String("dir", "", "repository directory (fs backend)")
	addr := flag.String("addr", ":7420", "listen address")
	doInit := flag.Bool("init", false, "initialize a fresh repository at -dir")
	backend := flag.String("backend", "fs", "storage backend: fs, mem, or remote")
	remoteURL := flag.String("remote-url", "", "remote backend: S3-style object server URL (implies -backend remote)")
	hedgeAfter := flag.Duration("hedge-after", 0, "remote backend: hedge a slow chunk fetch after this delay (0 = adaptive p95, negative disables)")
	remoteCacheBytes := flag.Int64("remote-cache-bytes", 0, "remote backend: chunk cache budget in bytes (0 = 32 MiB default, negative disables)")
	cache := flag.Int("cache", 64, "checkout LRU capacity in versions (0 disables)")
	cacheBytes := flag.Int64("cache-bytes", 0, "checkout LRU budget in payload bytes (0 disables; wins over -cache)")
	jobWorkers := flag.Int("jobs", 0, "max concurrent background optimize jobs (0 = default)")
	tune := flag.Bool("autotune", false, "auto-submit background re-layouts from commit/drift triggers")
	tuneInterval := flag.Duration("autotune-interval", 30*time.Second, "how often the autotune policy evaluates")
	tuneCommits := flag.Int("autotune-commits", 16, "re-layout after this many commits (0 disables the commit trigger)")
	tuneDrift := flag.Float64("autotune-drift", 0.25, "re-layout when weighted Φ drifts by this fraction (0 disables the drift trigger)")
	tuneSolver := flag.String("autotune-solver", "lmg", "registry solver auto re-layouts run")
	flag.Parse()
	var (
		r   *repo.Repo
		err error
	)
	if *remoteURL != "" {
		*backend = "remote"
	}
	switch *backend {
	case "fs":
		if *dir == "" {
			log.Fatal("vmsd: -dir is required with -backend fs")
		}
		if *doInit {
			r, err = repo.Init(*dir)
		} else {
			r, err = repo.Open(*dir)
		}
	case "mem":
		r, err = repo.InitBackend(store.NewMemStore())
	case "remote":
		if *remoteURL == "" {
			log.Fatal("vmsd: -remote-url is required with -backend remote")
		}
		client := remote.New(*remoteURL, remote.Options{
			CacheBytes: *remoteCacheBytes,
			HedgeAfter: *hedgeAfter,
		})
		if *doInit {
			r, err = repo.InitBackend(client)
		} else {
			r, err = repo.OpenBackend(client)
		}
	default:
		log.Fatalf("vmsd: unknown backend %q (want fs, mem, or remote)", *backend)
	}
	if err != nil {
		log.Fatalf("vmsd: %v", err)
	}
	cacheDesc := fmt.Sprintf("cache %d versions", *cache)
	if *cacheBytes > 0 {
		r.EnableCacheBytes(*cacheBytes)
		cacheDesc = fmt.Sprintf("cache %d bytes", *cacheBytes)
	} else {
		r.EnableCache(*cache)
	}
	opts := []vcs.ServerOption{vcs.WithJobWorkers(*jobWorkers)}
	if *tune {
		opts = append(opts, vcs.WithAutotune(autotune.Policy{
			Interval:        *tuneInterval,
			CommitThreshold: *tuneCommits,
			DriftThreshold:  *tuneDrift,
			Solver:          *tuneSolver,
		}))
	}
	srv := vcs.NewServer(r, opts...)
	fmt.Printf("vmsd: serving %s backend on %s (%d versions, %s, autotune %v)\n",
		*backend, *addr, r.NumVersions(), cacheDesc, *tune)
	// ListenAndServe only ever returns an error; stop the autotune loop,
	// cancel background jobs and wait for them before exiting (log.Fatal
	// would skip defers).
	serveErr := http.ListenAndServe(*addr, srv.Handler())
	srv.Close()
	log.Fatal(serveErr)
}
