// Command vmsd serves a dataset repository over HTTP — the server half of
// the paper's prototype version management system.
//
// Usage:
//
//	vmsd -dir /path/to/repo [-addr :7420] [-init]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"versiondb/internal/repo"
	"versiondb/internal/vcs"
)

func main() {
	dir := flag.String("dir", "", "repository directory (required)")
	addr := flag.String("addr", ":7420", "listen address")
	doInit := flag.Bool("init", false, "initialize a fresh repository at -dir")
	flag.Parse()
	if *dir == "" {
		log.Fatal("vmsd: -dir is required")
	}
	var (
		r   *repo.Repo
		err error
	)
	if *doInit {
		r, err = repo.Init(*dir)
	} else {
		r, err = repo.Open(*dir)
	}
	if err != nil {
		log.Fatalf("vmsd: %v", err)
	}
	srv := vcs.NewServer(r)
	fmt.Printf("vmsd: serving %s on %s (%d versions)\n", *dir, *addr, r.NumVersions())
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
