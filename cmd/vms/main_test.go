package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"versiondb/internal/repo"
	"versiondb/internal/solve"
	"versiondb/internal/store/remote"
	"versiondb/internal/vcs"
)

// writeCSV drops a small payload file and returns its path.
func writeCSV(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCLILocalWorkflow(t *testing.T) {
	dir := t.TempDir()
	work := t.TempDir()
	f1 := writeCSV(t, work, "v1.csv", "a,b\n1,2\n")
	f2 := writeCSV(t, work, "v2.csv", "a,b\n1,2\n3,4\n")
	out := filepath.Join(work, "out.csv")

	steps := [][]string{
		{"-dir", dir, "init"},
		{"-dir", dir, "commit", "-file", f1, "-m", "first"},
		{"-dir", dir, "commit", "-file", f2, "-m", "second"},
		{"-dir", dir, "branch", "-name", "exp", "-from", "0"},
		{"-dir", dir, "commit", "-branch", "exp", "-file", f2, "-m", "exp work"},
		{"-dir", dir, "log"},
		{"-dir", dir, "stats"},
		{"-dir", dir, "optimize", "-objective", "sum-recreation", "-hops", "3"},
		{"-dir", dir, "optimize", "-solver", "p4", "-hops", "3"},
		{"-dir", dir, "optimize", "-solver", "mp", "-hops", "3"},
		{"solvers"},
		{"-dir", dir, "checkout", "-v", "1", "-out", out},
		{"-dir", dir, "repack"},
		{"-dir", dir, "checkout", "-v", "2", "-out", out},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("vms %v: %v", args, err)
		}
	}
	got, err := os.ReadFile(out)
	if err != nil || string(got) != "a,b\n1,2\n3,4\n" {
		t.Errorf("checkout produced %q, %v", got, err)
	}
	// Merge via CLI.
	if err := run([]string{"-dir", dir, "merge", "-branch", "master", "-other", "2", "-file", f2, "-m", "merge exp"}); err != nil {
		t.Fatalf("merge: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	for name, args := range map[string][]string{
		"no subcommand":    {"-dir", dir},
		"no dir or server": {"log"},
		"unknown cmd":      {"-dir", dir, "frobnicate"},
		"open missing":     {"-dir", filepath.Join(dir, "nope"), "log"},
	} {
		if err := run(args); err == nil {
			t.Errorf("%s: no error for %v", name, args)
		}
	}
	// Bad objective after init.
	if err := run([]string{"-dir", dir, "init"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", dir, "optimize", "-objective", "bogus"}); err == nil {
		t.Errorf("bogus objective accepted")
	}
	if err := run([]string{"-dir", dir, "optimize", "-solver", "simplex"}); err == nil {
		t.Errorf("bogus solver accepted")
	}
}

// TestCLISolverRoster drives every registered solver end to end through the
// local optimize path — the acceptance criterion that each is reachable via
// `vms optimize -solver <name>`.
func TestCLISolverRoster(t *testing.T) {
	dir := t.TempDir()
	work := t.TempDir()
	if err := run([]string{"-dir", dir, "init"}); err != nil {
		t.Fatal(err)
	}
	for i, body := range []string{"a,b\n1,2\n", "a,b\n1,2\n3,4\n", "a,b\n1,2\n3,4\n5,6\n", "a,b\n1,9\n3,4\n5,6\n"} {
		f := writeCSV(t, work, "v.csv", body)
		if err := run([]string{"-dir", dir, "commit", "-file", f, "-m", "c"}); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	for _, name := range solve.Names() {
		if err := run([]string{"-dir", dir, "optimize", "-solver", name, "-hops", "3"}); err != nil {
			t.Errorf("optimize -solver %s: %v", name, err)
		}
	}
}

func TestCLIRemoteWorkflow(t *testing.T) {
	repoDir := t.TempDir()
	r, err := repo.Init(repoDir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(vcs.NewServer(r).Handler())
	defer srv.Close()
	work := t.TempDir()
	f1 := writeCSV(t, work, "v1.csv", "x,y\n9,8\n")
	out := filepath.Join(work, "back.csv")

	steps := [][]string{
		{"-server", srv.URL, "commit", "-file", f1, "-m", "root"},
		{"-server", srv.URL, "branch", "-name", "b1", "-from", "0"},
		{"-server", srv.URL, "commit", "-branch", "b1", "-file", f1, "-m", "again"},
		{"-server", srv.URL, "log"},
		{"-server", srv.URL, "stats"},
		{"-server", srv.URL, "optimize", "-objective", "min-storage", "-hops", "2"},
		{"-server", srv.URL, "checkout", "-v", "0", "-out", out},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("vms %v: %v", args, err)
		}
	}
	got, err := os.ReadFile(out)
	if err != nil || string(got) != "x,y\n9,8\n" {
		t.Errorf("remote checkout produced %q, %v", got, err)
	}
	if err := run([]string{"-server", srv.URL, "merge", "-branch", "master", "-other", "1", "-file", f1, "-m", "m"}); err != nil {
		t.Fatalf("remote merge: %v", err)
	}
	if err := run([]string{"-server", srv.URL, "frobnicate"}); err == nil {
		t.Errorf("unknown remote subcommand accepted")
	}
}

// TestCLIAsyncOptimizeAndJobs drives the background-job surface: queue an
// async optimize, list jobs, follow one to completion, and exercise the
// cancel and error paths.
func TestCLIAsyncOptimizeAndJobs(t *testing.T) {
	repoDir := t.TempDir()
	r, err := repo.Init(repoDir)
	if err != nil {
		t.Fatal(err)
	}
	s := vcs.NewServer(r)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	work := t.TempDir()
	for i, body := range []string{"x,y\n1,1\n", "x,y\n1,1\n2,2\n", "x,y\n1,1\n2,2\n3,3\n"} {
		f := writeCSV(t, work, "v.csv", body)
		if err := run([]string{"-server", srv.URL, "commit", "-file", f, "-m", "c"}); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}

	if err := run([]string{"-server", srv.URL, "optimize", "-async", "-solver", "mst", "-hops", "2"}); err != nil {
		t.Fatalf("optimize -async: %v", err)
	}
	// Recover the id via the client (the CLI printed it to stdout).
	c := vcs.NewClient(srv.URL)
	list, err := c.Jobs()
	if err != nil || len(list) != 1 {
		t.Fatalf("Jobs: %v (%d jobs)", err, len(list))
	}
	id := list[0].ID
	for _, args := range [][]string{
		{"-server", srv.URL, "jobs"},
		{"-server", srv.URL, "jobs", "-id", id, "-wait"},
		{"-server", srv.URL, "jobs", "-cancel", id}, // finished: idempotent no-op
	} {
		if err := run(args); err != nil {
			t.Fatalf("vms %v: %v", args, err)
		}
	}
	final, err := c.Job(id)
	if err != nil {
		t.Fatalf("Job: %v", err)
	}
	if final.State != "done" {
		t.Errorf("job state %q after wait+cancel, want done", final.State)
	}

	// Error paths: unknown job id, async without a server, jobs locally.
	if err := run([]string{"-server", srv.URL, "jobs", "-id", "j999"}); err == nil {
		t.Errorf("unknown job id accepted")
	}
	if err := run([]string{"-server", srv.URL, "jobs", "-cancel", "j999"}); err == nil {
		t.Errorf("cancel of unknown job accepted")
	}
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "init"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", dir, "optimize", "-async"}); err == nil {
		t.Errorf("local optimize -async accepted")
	}
	if err := run([]string{"-dir", dir, "jobs"}); err == nil {
		t.Errorf("local jobs accepted")
	}
}

// TestCLIStatsOldServer: `vms stats` against a server that predates the
// remote-tier stats fields must print the classic sections and exit 0 —
// the remote section is simply omitted, never an error.
func TestCLIStatsOldServer(t *testing.T) {
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/stats" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"versions":3,"branches":1,"materialized":2,"stored_bytes":42,`+
			`"logical_bytes":99,"max_chain_hops":2,"cache_hits":1,"cache_misses":1,`+
			`"cache_hit_ratio":0.5,"cache_evictions":0,"cache_entries":1,"cache_bytes":10,`+
			`"blob_reads":4,"accesses":6,"weighted_phi":12.5}`)
	}))
	defer old.Close()
	if err := run([]string{"-server", old.URL, "stats"}); err != nil {
		t.Fatalf("vms stats against old server: %v", err)
	}
}

// TestCLIRemoteTierWorkflow drives the tiered-remote backend end to end
// through the CLI: init against an object server, commit, checkout, and a
// stats call that surfaces the tier counters.
func TestCLIRemoteTierWorkflow(t *testing.T) {
	objSrv := remote.NewServer()
	objTS := httptest.NewServer(objSrv.Handler())
	defer objTS.Close()
	work := t.TempDir()
	f1 := writeCSV(t, work, "v1.csv", "p,q\n7,7\n")
	f2 := writeCSV(t, work, "v2.csv", "p,q\n7,7\n8,8\n")
	out := filepath.Join(work, "back.csv")

	steps := [][]string{
		{"-remote-url", objTS.URL, "init"},
		{"-remote-url", objTS.URL, "commit", "-file", f1, "-m", "first"},
		{"-remote-url", objTS.URL, "-hedge-after", "-1ns", "commit", "-file", f2, "-m", "second"},
		{"-remote-url", objTS.URL, "-remote-cache-bytes", "-1", "checkout", "-v", "1", "-out", out},
		{"-remote-url", objTS.URL, "stats"},
		{"-remote-url", objTS.URL, "log"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("vms %v: %v", args, err)
		}
	}
	got, err := os.ReadFile(out)
	if err != nil || string(got) != "p,q\n7,7\n8,8\n" {
		t.Errorf("remote-tier checkout produced %q, %v", got, err)
	}
	if objSrv.NumObjects() == 0 {
		t.Errorf("object server holds no objects after commits")
	}
}
