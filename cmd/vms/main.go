// Command vms is the client CLI of the prototype version management
// system. It talks to a vmsd server (-server) or operates on a local
// repository directory (-dir).
//
// Subcommands:
//
//	vms -dir D init
//	vms -dir D commit  -branch B -file F -m MSG
//	vms -dir D merge   -branch B -other N -file F -m MSG
//	vms -dir D branch  -name B -from N
//	vms -dir D checkout -v N [-out F]
//	vms -dir D log
//	vms -dir D stats
//	vms -dir D gc
//	vms solvers
//	vms -dir D optimize -solver mst|spt|lmg|mp|last|gith|exact|p4|p5 \
//	                    [-budget B] [-budget-factor X] [-theta T] [-alpha A] \
//	                    [-iters N] [-hops K] [-compress] [-no-auto-weights]
//	vms -server URL optimize -async [...]
//	vms -server URL jobs [-id J [-wait]] [-cancel J]
//
// optimize dispatches through the unified solver registry; `vms solvers`
// lists every registered solver with its paper problem and constraint. The
// legacy -objective names (min-storage, sum-recreation, max-recreation)
// remain accepted when -solver is not given. A local optimize honors
// Ctrl-C: interrupting a long solve cancels it cleanly instead of killing
// the process mid-rewrite. Weight-consuming solvers (lmg) pick up access
// telemetry automatically; -no-auto-weights forces the uniform objective.
//
// checkout streams the payload to -out (or stdout) through a fixed-size
// copy buffer — locally from the repository's reader stack, remotely from
// GET /checkout/raw's raw body — so checking out a payload larger than
// client memory works.
//
// stats reports the physical state plus the serving-path telemetry —
// cache occupancy (entries and bytes), hit ratio, evictions, and backend
// blob reads, the numbers a byte-budget tuner watches — the access
// telemetry feeding workload-aware optimization (total recorded accesses,
// the weighted recreation estimate Φ_w, the hottest versions), and —
// against an auto-tuned vmsd — the autotune engine's trigger inputs and
// last outcome.
//
// Against a server, `optimize -async` queues the re-layout as a background
// job and prints its id immediately — the server solves off-lock and swaps
// the layout copy-on-write, so checkouts keep flowing meanwhile. `vms
// jobs` lists jobs, `-id J` shows one (add -wait to block until it
// finishes), and `-cancel J` stops one server-side.
//
// Replace -dir D with -server URL to run against a vmsd instance. The
// global -cache N flag bounds the local checkout LRU in versions
// (0 disables); -cache-bytes B bounds it in payload bytes instead and wins
// over -cache — the byte budget is a hard ceiling, and payloads larger
// than the whole budget bypass admission. -backend mem swaps the
// filesystem store for a fresh in-memory one, which only lives for a
// single invocation and is meant for smoke tests.
//
// -remote-url URL stores blobs in the remote tier instead: an S3-style
// object server holding content-defined chunks, fronted by a byte-budget
// chunk cache (-remote-cache-bytes, 0 = 32 MiB default, negative
// disables) with hedged reads against slow chunk fetches (-hedge-after:
// 0 = adaptive p95, negative disables). `vms stats` then shows the tier's
// chunk, hedge and dedup counters; against an older server without them
// the section is simply omitted.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"versiondb/internal/bench"
	"versiondb/internal/repo"
	"versiondb/internal/solve"
	"versiondb/internal/store"
	"versiondb/internal/store/remote"
	"versiondb/internal/vcs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vms:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("vms", flag.ContinueOnError)
	dir := global.String("dir", "", "local repository directory")
	server := global.String("server", "", "vmsd server URL (e.g. http://localhost:7420)")
	backend := global.String("backend", "fs", "local storage backend: fs or mem (mem is per-invocation, for smoke tests)")
	cache := global.Int("cache", 0, "checkout LRU capacity in versions (0 disables)")
	cacheBytes := global.Int64("cache-bytes", 0, "checkout LRU budget in payload bytes (0 disables; wins over -cache)")
	remoteURL := global.String("remote-url", "", "store blobs in the remote tier: S3-style object server URL (overrides -backend)")
	hedgeAfter := global.Duration("hedge-after", 0, "remote tier: hedge a slow chunk fetch after this delay (0 = adaptive p95, negative disables)")
	remoteCacheBytes := global.Int64("remote-cache-bytes", 0, "remote tier: chunk cache budget in bytes (0 = 32 MiB default, negative disables)")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand (init, commit, merge, branch, checkout, log, stats, gc, solvers, optimize, jobs)")
	}
	cmd, rest := rest[0], rest[1:]
	if cmd == "solvers" {
		bench.FormatSolvers(os.Stdout)
		return nil
	}
	if *server != "" {
		return runRemote(vcs.NewClient(*server), cmd, rest)
	}
	if *remoteURL != "" {
		*backend = "remote"
	} else if *backend != "fs" && *backend != "mem" {
		return fmt.Errorf("unknown backend %q (want fs or mem, or -remote-url)", *backend)
	}
	if *dir == "" && *backend == "fs" {
		return fmt.Errorf("one of -dir or -server is required")
	}
	tier := remote.Options{CacheBytes: *remoteCacheBytes, HedgeAfter: *hedgeAfter}
	return runLocal(*dir, *backend, *remoteURL, tier, *cache, *cacheBytes, cmd, rest)
}

func runLocal(dir, backend, remoteURL string, tier remote.Options, cache int, cacheBytes int64, cmd string, args []string) error {
	openRepo := func() (*repo.Repo, error) {
		switch backend {
		case "mem":
			return repo.InitBackend(store.NewMemStore())
		case "remote":
			return repo.OpenBackend(remote.New(remoteURL, tier))
		}
		return repo.Open(dir)
	}
	if cmd == "init" {
		switch backend {
		case "mem":
			fmt.Println("initialized in-memory repository (contents die with this process)")
			return nil
		case "remote":
			if _, err := repo.InitBackend(remote.New(remoteURL, tier)); err != nil {
				return err
			}
			fmt.Println("initialized remote-tier repository at", remoteURL)
			return nil
		}
		if _, err := repo.Init(dir); err != nil {
			return err
		}
		fmt.Println("initialized empty repository at", dir)
		return nil
	}
	r, err := openRepo()
	if err != nil {
		return err
	}
	if cacheBytes > 0 {
		r.EnableCacheBytes(cacheBytes)
	} else {
		r.EnableCache(cache)
	}
	switch cmd {
	case "commit", "merge":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		branch := fs.String("branch", repo.DefaultBranch, "branch")
		file := fs.String("file", "", "payload file")
		msg := fs.String("m", "", "commit message")
		other := fs.Int("other", -1, "merge source version (merge only)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		payload, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		var id int
		if cmd == "merge" {
			id, err = r.Merge(*branch, *other, payload, *msg)
		} else {
			id, err = r.Commit(*branch, payload, *msg)
		}
		if err != nil {
			return err
		}
		fmt.Printf("committed version %d on %s\n", id, *branch)
	case "branch":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		name := fs.String("name", "", "new branch name")
		from := fs.Int("from", -1, "source version")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if err := r.Branch(*name, *from); err != nil {
			return err
		}
		fmt.Printf("branch %s created at version %d\n", *name, *from)
	case "checkout":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		v := fs.Int("v", -1, "version to check out")
		out := fs.String("out", "", "output file (default stdout)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		rc, _, err := r.CheckoutStream(*v)
		if err != nil {
			return err
		}
		return writeStream(rc, *out)
	case "log":
		printLog(r.Log())
	case "repack":
		path, err := r.Repack()
		if err != nil {
			return err
		}
		fmt.Println("packed loose objects into", path)
	case "gc":
		res, err := r.GC()
		if err != nil {
			return err
		}
		fmt.Printf("gc: scanned %d blobs, %d live, collected %d orphans\n",
			res.Scanned, res.Live, res.Collected)
	case "stats":
		st := r.Stats()
		fmt.Printf("versions:       %d\n", st.Versions)
		fmt.Printf("branches:       %d\n", st.Branches)
		fmt.Printf("materialized:   %d\n", st.Materialized)
		fmt.Printf("stored bytes:   %d\n", st.StoredBytes)
		fmt.Printf("logical bytes:  %d\n", st.LogicalBytes)
		fmt.Printf("max chain hops: %d\n", st.MaxChainHops)
		fmt.Printf("cache:          %d entries, %d bytes", st.CacheEntries, st.CacheBytes)
		if st.CacheBudgetBytes > 0 {
			fmt.Printf(" (budget %d)", st.CacheBudgetBytes)
		}
		fmt.Printf(", hit ratio %s, %d evictions\n", hitRatio(st.CacheHits, st.CacheMisses), st.CacheEvictions)
		fmt.Printf("blob reads:     %d\n", st.BlobReads)
		fmt.Printf("accesses:       %d\n", st.Accesses)
		fmt.Printf("weighted Φ:     %.0f\n", r.WeightedPhi())
		if st.Log.Appends > 0 || st.Log.Records > 0 {
			fmt.Printf("meta log:       %d records, %d bytes, %d compactions, %d replayed",
				st.Log.Records, st.Log.Bytes, st.Log.Compactions, st.Log.Replayed)
			if st.Log.TornTails > 0 {
				fmt.Printf(", %d torn tails repaired", st.Log.TornTails)
			}
			fmt.Println()
		}
		if st.GCRuns > 0 {
			fmt.Printf("gc:             %d runs, %d blobs collected\n", st.GCRuns, st.GCCollected)
		}
		if rs := st.Remote; rs != nil {
			fmt.Printf("remote tier:    ×%.1f retrieval cost, %d chunks stored, %d deduped (dedup ratio %.3f)\n",
				st.RetrievalFactor, rs.ChunksStored, rs.ChunksDeduped, rs.DedupRatio())
			fmt.Printf("                %d fetches, %d near hits (hit ratio %.3f), hedged %d (%d wins), %d retries\n",
				rs.ChunkFetches, rs.ChunkHits, rs.ChunkHitRatio(), rs.Hedged, rs.HedgeWins, rs.Retries)
		}
		if hot := r.HotVersions(5); len(hot) > 0 {
			fmt.Printf("hot versions:  ")
			for _, h := range hot {
				fmt.Printf(" v%d(%.1f)", h.Version, h.Count)
			}
			fmt.Println()
		}
	case "jobs":
		return fmt.Errorf("jobs requires -server (background jobs live in a vmsd instance)")
	case "optimize":
		wire, async, err := parseOptimizeFlags(args)
		if err != nil {
			return err
		}
		if async {
			return fmt.Errorf("optimize -async requires -server (a local process would just wait for its own job)")
		}
		solver := wire.Solver
		if solver == "" {
			if solver, err = repo.ObjectiveSolverName(wire.Objective); err != nil {
				return err
			}
		}
		opts := repo.OptimizeOptions{
			Request: solve.Request{
				Solver: solver,
				Budget: wire.Budget,
				Theta:  wire.Theta,
				Alpha:  wire.Alpha,
				Iters:  wire.Iters,
			},
			BudgetFactor:  wire.BudgetFactor,
			RevealHops:    wire.RevealHops,
			Compress:      wire.Compress,
			NoAutoWeights: wire.NoAutoWeights,
		}
		// Ctrl-C cancels the solve instead of killing the process mid-way.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		res, err := r.Optimize(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Printf("optimized with %s (%s): storage=%.0f ΣR=%.0f maxR=%.0f\n",
			res.Solver, res.Algorithm, res.Storage, res.SumR, res.MaxR)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	return nil
}

func runRemote(c *vcs.Client, cmd string, args []string) error {
	switch cmd {
	case "commit", "merge":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		branch := fs.String("branch", repo.DefaultBranch, "branch")
		file := fs.String("file", "", "payload file")
		msg := fs.String("m", "", "commit message")
		other := fs.Int("other", -1, "merge source version (merge only)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		payload, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		var id int
		if cmd == "merge" {
			id, err = c.Merge(*branch, *other, payload, *msg)
		} else {
			id, err = c.Commit(*branch, payload, *msg)
		}
		if err != nil {
			return err
		}
		fmt.Printf("committed version %d on %s\n", id, *branch)
	case "branch":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		name := fs.String("name", "", "new branch name")
		from := fs.Int("from", -1, "source version")
		if err := fs.Parse(args); err != nil {
			return err
		}
		return c.Branch(*name, *from)
	case "checkout":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		v := fs.Int("v", -1, "version to check out")
		out := fs.String("out", "", "output file (default stdout)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		rc, _, err := c.CheckoutStream(*v)
		if err != nil {
			return err
		}
		return writeStream(rc, *out)
	case "log":
		versions, err := c.Log()
		if err != nil {
			return err
		}
		printLog(versions)
	case "stats":
		st, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("versions=%d branches=%d materialized=%d stored=%d logical=%d maxChain=%d\n",
			st.Versions, st.Branches, st.Materialized, st.StoredBytes, st.LogicalBytes, st.MaxChainHops)
		fmt.Printf("cache: entries=%d bytes=%d", st.CacheEntries, st.CacheBytes)
		if st.CacheBudgetBytes > 0 {
			fmt.Printf(" budget=%d", st.CacheBudgetBytes)
		}
		fmt.Printf(" hitRatio=%.3f evictions=%d blobReads=%d\n", st.CacheHitRatio, st.CacheEvictions, st.BlobReads)
		fmt.Printf("accesses=%d weightedΦ=%.0f\n", st.Accesses, st.WeightedPhi)
		if len(st.Hot) > 0 {
			fmt.Printf("hot:")
			for _, h := range st.Hot {
				fmt.Printf(" v%d(%.1f)", h.ID, h.Count)
			}
			fmt.Println()
		}
		if st.LogAppends > 0 || st.LogRecords > 0 {
			fmt.Printf("metalog: records=%d bytes=%d compactions=%d replayed=%d tornTails=%d\n",
				st.LogRecords, st.LogBytes, st.LogCompactions, st.LogReplayed, st.LogTornTails)
		}
		if st.GCRuns > 0 {
			fmt.Printf("gc: runs=%d collected=%d\n", st.GCRuns, st.GCCollected)
		}
		// Older servers omit the remote-tier fields entirely; the nil
		// section just doesn't print — never an error.
		if rs := st.Remote; rs != nil {
			fmt.Printf("remote: factor=%.1f chunkFetches=%d chunkHits=%d hitRatio=%.3f hedged=%d hedgeWins=%d retries=%d\n",
				st.RetrievalFactor, rs.ChunkFetches, rs.ChunkHits, rs.ChunkHitRatio, rs.Hedged, rs.HedgeWins, rs.Retries)
			fmt.Printf("remote: chunksStored=%d chunksDeduped=%d bytesStored=%d bytesDeduped=%d dedupRatio=%.3f bytesFetched=%d\n",
				rs.ChunksStored, rs.ChunksDeduped, rs.BytesStored, rs.BytesDeduped, rs.DedupRatio, rs.BytesFetched)
		}
		if a := st.Autotune; a != nil {
			fmt.Printf("autotune: solver=%s jobs=%d debounced=%d commits=%d drift=%.3f inflight=%v\n",
				a.Solver, a.AutoJobs, a.Debounced, a.CommitsSince, a.Drift, a.InFlight)
			if a.LastJobID != "" {
				fmt.Printf("autotune last: job=%s trigger=%s outcome=%s %s\n",
					a.LastJobID, a.LastTrigger, a.LastOutcome, a.LastError)
			}
		}
		// Primaries omit the replica section; it only prints when the
		// server is a read-only follower.
		if rep := st.Replica; rep != nil {
			fmt.Printf("replica: applied=%d lag=%d lastApplyUnix=%d\n",
				rep.AppliedOffset, rep.LagRecords, rep.LastApplyUnix)
		}
	case "optimize":
		wire, async, err := parseOptimizeFlags(args)
		if err != nil {
			return err
		}
		if wire.Solver == "" {
			// Validate client-side for a friendly message; the server would
			// answer 400 anyway.
			if _, err := repo.ObjectiveSolverName(wire.Objective); err != nil {
				return err
			}
		}
		if async {
			id, err := c.OptimizeAsync(wire)
			if err != nil {
				return err
			}
			fmt.Printf("optimize queued as job %s (vms jobs -id %s -wait to follow, -cancel %s to stop)\n", id, id, id)
			return nil
		}
		resp, err := c.Optimize(wire)
		if err != nil {
			return err
		}
		fmt.Printf("optimized with %s (%s): storage=%.0f ΣR=%.0f maxR=%.0f stored=%d\n",
			resp.Solver, resp.Algorithm, resp.Storage, resp.SumR, resp.MaxR, resp.StoredBytes)
	case "gc":
		res, err := c.GC()
		if err != nil {
			return err
		}
		fmt.Printf("gc: scanned %d blobs, %d live, collected %d orphans\n",
			res.Scanned, res.Live, res.Collected)
	case "jobs":
		fs := flag.NewFlagSet("jobs", flag.ContinueOnError)
		id := fs.String("id", "", "show a single job")
		cancel := fs.String("cancel", "", "cancel the job with this id")
		wait := fs.Bool("wait", false, "with -id, block until the job reaches a terminal state")
		if err := fs.Parse(args); err != nil {
			return err
		}
		switch {
		case *cancel != "":
			info, err := c.CancelJob(*cancel)
			if err != nil {
				return err
			}
			fmt.Printf("job %s: %s\n", info.ID, info.State)
		case *id != "":
			var info *vcs.JobInfo
			var err error
			if *wait {
				info, err = c.JobWait(*id)
			} else {
				info, err = c.Job(*id)
			}
			if err != nil {
				return err
			}
			printJob(info)
		default:
			list, err := c.Jobs()
			if err != nil {
				return err
			}
			tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "id\tstate\tsolver\tphase\tdetail")
			for i := range list {
				j := &list[i]
				detail := j.Error
				if j.Result != nil {
					detail = fmt.Sprintf("storage=%.0f ΣR=%.0f", j.Result.Storage, j.Result.SumR)
				}
				fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", j.ID, j.State, j.Solver, j.Phase, detail)
			}
			tw.Flush()
		}
	default:
		return fmt.Errorf("unknown subcommand %q (remote)", cmd)
	}
	return nil
}

// printJob renders one job in detail.
func printJob(j *vcs.JobInfo) {
	fmt.Printf("job %s: %s (solver %s)\n", j.ID, j.State, j.Solver)
	if j.Phase != "" {
		fmt.Printf("  phase:    %s\n", j.Phase)
	}
	fmt.Printf("  created:  %s\n", j.Created.Format(time.RFC3339))
	if !j.Started.IsZero() {
		fmt.Printf("  started:  %s\n", j.Started.Format(time.RFC3339))
	}
	if !j.Finished.IsZero() {
		fmt.Printf("  finished: %s\n", j.Finished.Format(time.RFC3339))
	}
	if j.Result != nil {
		fmt.Printf("  result:   %s (%s) storage=%.0f ΣR=%.0f maxR=%.0f stored=%d\n",
			j.Result.Solver, j.Result.Algorithm, j.Result.Storage, j.Result.SumR, j.Result.MaxR, j.Result.StoredBytes)
	}
	if j.Error != "" {
		fmt.Printf("  error:    %s\n", j.Error)
	}
}

// parseOptimizeFlags parses the shared optimize flag set into the wire
// request both the local and remote paths consume, plus the -async flag
// only the remote path honors.
func parseOptimizeFlags(args []string) (vcs.OptimizeRequest, bool, error) {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	solver := fs.String("solver", "", "registry solver name (see `vms solvers`); overrides -objective")
	objective := fs.String("objective", "sum-recreation", "legacy selector: min-storage, sum-recreation or max-recreation")
	budget := fs.Float64("budget", 0, "storage budget β (lmg, p4); 0 derives from -budget-factor")
	bf := fs.Float64("budget-factor", 1.25, "default budget as a multiple of minimum storage")
	theta := fs.Float64("theta", 0, "recreation bound θ (mp/exact: max Φ, p5: Σ Φ)")
	alpha := fs.Float64("alpha", 0, "LAST stretch bound α (> 1)")
	iters := fs.Int("iters", 0, "binary-search iterations for p4/p5 (0 = 40)")
	hops := fs.Int("hops", 5, "delta revelation radius")
	compress := fs.Bool("compress", false, "compress stored blobs")
	noWeights := fs.Bool("no-auto-weights", false, "ignore access telemetry: run weight-consuming solvers with uniform weights")
	async := fs.Bool("async", false, "queue as a background job on the server and return its id (remote only)")
	if err := fs.Parse(args); err != nil {
		return vcs.OptimizeRequest{}, false, err
	}
	return vcs.OptimizeRequest{
		Solver: *solver, Objective: *objective, Budget: *budget, BudgetFactor: *bf,
		Theta: *theta, Alpha: *alpha, Iters: *iters, RevealHops: *hops, Compress: *compress,
		NoAutoWeights: *noWeights,
	}, *async, nil
}

// writeStream drains a checkout stream to the -out file (or stdout),
// copying through a fixed buffer so the payload never sits in process
// memory whole — the CLI analogue of the server's raw body path. The
// partial output file of a failed copy is left in place for inspection,
// matching what a failed os.WriteFile could also leave behind.
func writeStream(rc io.ReadCloser, out string) error {
	defer rc.Close()
	dst := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	_, err := io.Copy(dst, rc)
	return err
}

// hitRatio renders hits/(hits+misses) for humans, "n/a" before any lookup.
func hitRatio(hits, misses uint64) string {
	if hits+misses == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", store.CacheStats{Hits: hits, Misses: misses}.HitRatio())
}

func printLog(versions []repo.VersionInfo) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "id\tbranch\tparents\tsize\tmessage")
	for _, v := range versions {
		fmt.Fprintf(tw, "%d\t%s\t%v\t%d\t%s\n", v.ID, v.Branch, v.Parents, v.Size, v.Message)
	}
	tw.Flush()
}
