// Command vmslint is the repository's lint entrypoint: a multichecker
// bundling the custom invariant analyzers (lockorder, lockedcall,
// ctxloop, senterr) with vet-style passes (copylocks, unusedresult,
// nilness). Run it from the module root:
//
//	go run ./cmd/vmslint ./...
//
// It prints diagnostics as file:line:col: message (analyzer) and exits
// non-zero if any are found, so CI can gate on it.
package main

import (
	"versiondb/internal/analysis"
	"versiondb/internal/analysis/ctxloop"
	"versiondb/internal/analysis/lockedcall"
	"versiondb/internal/analysis/lockorder"
	"versiondb/internal/analysis/senterr"
	"versiondb/internal/analysis/vetlite"
)

func main() {
	analysis.Main(
		lockorder.Analyzer,
		lockedcall.Analyzer,
		ctxloop.Analyzer,
		senterr.Analyzer,
		vetlite.CopyLocks,
		vetlite.UnusedResult,
		vetlite.Nilness,
	)
}
