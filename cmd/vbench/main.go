// Command vbench regenerates the tables and figures of the paper's
// evaluation (§5). Each experiment prints an aligned text table whose rows
// are the series the paper plots.
//
// Usage:
//
//	vbench -exp solvers|fig12|fig13|fig14|fig15|fig16|fig17|table2|svn-git|physical|autotune|replicas|all \
//	       [-scale full|test] [-seed N] [-points K]
//
// The solvers experiment prints the live solver registry (name → paper
// problem → constraint); the tradeoff figures iterate that registry rather
// than a hand-maintained algorithm list. The autotune experiment closes
// the serving loop: it drives a skewed checkout workload through a live
// repository and compares the unweighted layout against one laid out with
// telemetry-derived weights, reporting the weighted recreation cost Φ_w
// each would serve. The replicas experiment measures horizontal read
// scale-out: the same Zipf checkout workload served through the vmsproxy
// consistent-hash router at 1, 2, and 4 metalog-tailing replicas,
// reporting aggregate throughput and p50/p99 latency.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"versiondb/internal/bench"
	"versiondb/internal/solve"
)

func main() {
	exp := flag.String("exp", "all", "experiment: solvers, fig12, fig13, fig14, fig15, fig16, fig17, table2, svn-git, physical, autotune, replicas, all")
	scaleName := flag.String("scale", "full", "dataset scale: full or test")
	seed := flag.Int64("seed", 1, "workload generator seed")
	points := flag.Int("points", 0, "points per tradeoff curve (0 = default)")
	csvDir := flag.String("csv", "", "directory to also write CSV outputs into")
	flag.Parse()

	scale := bench.DefaultScale()
	if *scaleName == "test" {
		scale = bench.TestScale()
	}
	scale.Seed = *seed
	if *points > 0 {
		scale.SweepPoints = *points
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "vbench:", err)
			os.Exit(1)
		}
	}
	if err := run(*exp, scale, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "vbench:", err)
		os.Exit(1)
	}
}

// writeCSV persists one artifact's CSV when -csv is set.
func writeCSV(dir, name string, emit func(w *os.File) error) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return emit(f)
}

func run(exp string, scale bench.Scale, csvDir string) error {
	out := os.Stdout
	runOne := func(name string) error {
		switch name {
		case "solvers":
			bench.FormatSolvers(out)
		case "fig12":
			rows, err := bench.Fig12(scale)
			if err != nil {
				return err
			}
			bench.FormatFig12(out, rows)
			if err := writeCSV(csvDir, name, func(w *os.File) error { return bench.WriteFig12CSV(w, rows) }); err != nil {
				return err
			}
		case "fig13":
			fig, err := bench.Fig13(scale)
			if err != nil {
				return err
			}
			bench.FormatFigure(out, fig)
			if err := writeCSV(csvDir, name, func(w *os.File) error { return bench.WriteFigureCSV(w, fig) }); err != nil {
				return err
			}
		case "fig14":
			fig, err := bench.Fig14(scale)
			if err != nil {
				return err
			}
			bench.FormatFigure(out, fig)
			if err := writeCSV(csvDir, name, func(w *os.File) error { return bench.WriteFigureCSV(w, fig) }); err != nil {
				return err
			}
		case "fig15":
			fig, err := bench.Fig15(scale)
			if err != nil {
				return err
			}
			bench.FormatFigure(out, fig)
			if err := writeCSV(csvDir, name, func(w *os.File) error { return bench.WriteFigureCSV(w, fig) }); err != nil {
				return err
			}
		case "fig16":
			fig, err := bench.Fig16(scale)
			if err != nil {
				return err
			}
			bench.FormatFigure(out, fig)
			gaps, err := bench.Fig16Gap(fig)
			if err != nil {
				return err
			}
			for name, g := range gaps {
				fmt.Fprintf(out, "   %s: plain/aware weighted ΣR ratio = %.3f\n", name, g)
			}
		case "fig17":
			sizes := []int{100, 250, 500, 1000}
			if scale.DC < 1000 {
				sizes = []int{30, 60, 100}
			}
			rows, err := bench.Fig17(scale, sizes, 3)
			if err != nil {
				return err
			}
			bench.FormatFig17(out, rows)
			if err := writeCSV(csvDir, name, func(w *os.File) error { return bench.WriteFig17CSV(w, rows) }); err != nil {
				return err
			}
		case "table2":
			sizes := []int{15, 25, 50}
			if scale.DC < 1000 {
				sizes = []int{10, 15}
			}
			rows, err := bench.Table2(sizes, 5, scale.Seed, solve.ExactOptions{})
			if err != nil {
				return err
			}
			bench.FormatTable2(out, rows)
			if err := writeCSV(csvDir, name, func(w *os.File) error { return bench.WriteTable2CSV(w, rows) }); err != nil {
				return err
			}
		case "svn-git":
			n := 60
			if scale.DC < 1000 {
				n = 30
			}
			rows, err := bench.Sec52(n, scale.Seed)
			if err != nil {
				return err
			}
			bench.FormatSec52(out, rows)
			if err := bench.Sec52Ordering(rows); err != nil {
				fmt.Fprintf(out, "   WARNING: %v\n", err)
			} else {
				fmt.Fprintln(out, "   ordering holds: naive > gzip > SVN > GitH ≥ MCA")
			}
		case "physical":
			n := 40
			if scale.DC < 1000 {
				n = 20
			}
			rows, err := bench.Physical(n, scale.Seed)
			if err != nil {
				return err
			}
			bench.FormatPhysical(out, rows)
		case "autotune":
			n := 60
			if scale.DC < 1000 {
				n = 30
			}
			rows, err := bench.Autotune(n, scale.Seed)
			if err != nil {
				return err
			}
			bench.FormatAutotune(out, rows)
			if err := writeCSV(csvDir, name, func(w *os.File) error { return bench.WriteAutotuneCSV(w, rows) }); err != nil {
				return err
			}
		case "replicas":
			rs := bench.DefaultReplicaScale()
			if scale.DC < 1000 {
				rs = bench.TestReplicaScale()
			}
			rs.Seed = scale.Seed
			rows, err := bench.Replicas(rs)
			if err != nil {
				return err
			}
			bench.FormatReplicas(out, rows)
			if err := writeCSV(csvDir, name, func(w *os.File) error { return bench.WriteReplicasCSV(w, rows) }); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Fprintln(out)
		return nil
	}

	if exp == "all" {
		for _, name := range []string{"solvers", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "table2", "svn-git", "physical", "autotune", "replicas"} {
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	return runOne(exp)
}
