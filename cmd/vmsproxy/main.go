// Command vmsproxy is the thin routing gateway in front of a vmsd primary
// and its replicas: one stable address for clients while the fleet scales.
//
// Usage:
//
//	vmsproxy -primary http://primary:7420 \
//	         [-replicas http://r1:7421,http://r2:7422] [-addr :7430]
//
// GET /checkout and GET /checkout/raw are routed by the version's
// delta-chain root over a consistent-hash ring of replicas, so each
// replica's checkout cache converges on whole chain prefixes instead of
// every replica caching a little of everything. All writes (/commit,
// /branch, /optimize, /gc, job control) and reads of versions not yet
// visible in the proxy's routing view forward to the primary — a commit
// acknowledged by the primary is immediately readable through the proxy,
// whatever the replica lag. A replica answering 404 or 5xx is retried
// against the primary, so a lagging or dead replica degrades to primary
// service, not errors. With no -replicas every request passes through to
// the primary.
//
// The proxy keeps its routing view fresh by following the primary's
// metadata log (GET /log?from=, long-polled) into a metadata-only replica;
// it stores no blobs and serves no state of its own.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"versiondb/internal/replication"
)

func main() {
	addr := flag.String("addr", ":7430", "listen address")
	primary := flag.String("primary", "", "primary vmsd URL (required)")
	replicas := flag.String("replicas", "", "comma-separated replica vmsd URLs")
	flag.Parse()
	if *primary == "" {
		log.Fatal("vmsproxy: -primary is required")
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	rt, err := replication.NewRouter(*primary, urls)
	if err != nil {
		log.Fatalf("vmsproxy: %v", err)
	}
	if err := rt.Sync(context.Background()); err != nil {
		log.Printf("vmsproxy: initial sync from %s: %v (retrying in background)", *primary, err)
	}
	go func() { _ = rt.Run(context.Background()) }()
	fmt.Printf("vmsproxy: routing on %s (primary %s, %d replicas)\n", *addr, *primary, len(urls))
	log.Fatal(http.ListenAndServe(*addr, rt.Handler()))
}
