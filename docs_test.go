package versiondb

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markdownLink matches [text](target) links; images share the same tail.
var markdownLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// docFiles are the documents whose links the docs CI job keeps honest.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "ROADMAP.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatalf("glob docs: %v", err)
	}
	return append(files, docs...)
}

// TestDocLinks verifies every relative markdown link in README, ROADMAP and
// docs/ resolves to an existing file (external http(s)/mailto links and
// pure in-page anchors are skipped — network-free by design).
func TestDocLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("read %s: %v", file, err)
		}
		for _, m := range markdownLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			// Strip an in-file fragment and resolve relative to the doc.
			path := target
			if i := strings.IndexByte(path, '#'); i >= 0 {
				path = path[:i]
			}
			if path == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(path))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", file, target, resolved, err)
			}
		}
	}
}

// TestDocAnchorsForSolverTable pins the in-README anchor the solver table
// references, so a future heading rename cannot silently strand it.
func TestDocAnchorsForSolverTable(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("read README.md: %v", err)
	}
	if !strings.Contains(string(data), "## Auto-tuning") {
		t.Error("README.md: #auto-tuning anchor target (\"## Auto-tuning\" heading) missing")
	}
}
