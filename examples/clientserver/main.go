// Client-server demo: the paper's prototype architecture (§5) end to end.
// A vmsd-style HTTP server owns the repository; a client commits dataset
// versions, branches, merges, triggers a server-side storage optimization,
// and checks versions back out — all over the wire.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"

	"versiondb"
	"versiondb/internal/dataset"
	"versiondb/internal/vcs"
)

func main() {
	dir, err := os.MkdirTemp("", "versiondb-clientserver-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	r, err := versiondb.InitRepo(dir)
	if err != nil {
		log.Fatal(err)
	}
	// Serve on an ephemeral local port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: vcs.NewServer(r).Handler()}
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			log.Print(err)
		}
	}()
	defer srv.Close()
	url := "http://" + ln.Addr().String()
	fmt.Println("server listening on", url)

	client := vcs.NewClient(url)
	rng := rand.New(rand.NewSource(1))

	// Commit a base dataset and iterate on two branches.
	table := dataset.Random(rng, 120, 5)
	root, err := client.Commit("master", mustCSV(table), "base dataset")
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Branch("cleaning", root); err != nil {
		log.Fatal(err)
	}
	cleaning := table
	for i := 0; i < 3; i++ {
		cleaning = evolve(rng, cleaning)
		if _, err := client.Commit("cleaning", mustCSV(cleaning), fmt.Sprintf("cleaning pass %d", i+1)); err != nil {
			log.Fatal(err)
		}
	}
	main := table
	for i := 0; i < 2; i++ {
		main = evolve(rng, main)
		if _, err := client.Commit("master", mustCSV(main), fmt.Sprintf("main edit %d", i+1)); err != nil {
			log.Fatal(err)
		}
	}
	// The user merges (the prototype never auto-merges).
	logEntries, err := client.Log()
	if err != nil {
		log.Fatal(err)
	}
	cleaningTip := -1
	for _, v := range logEntries {
		if v.Branch == "cleaning" {
			cleaningTip = v.ID
		}
	}
	merged := evolve(rng, main)
	if _, err := client.Merge("master", cleaningTip, mustCSV(merged), "merge cleaning into master"); err != nil {
		log.Fatal(err)
	}

	before, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before optimize: %d versions, stored %d bytes (logical %d)\n",
		before.Versions, before.StoredBytes, before.LogicalBytes)

	resp, err := client.Optimize(vcs.OptimizeRequest{
		Objective:    "sum-recreation",
		BudgetFactor: 1.25,
		RevealHops:   5,
		Compress:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	after, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized with %s: stored %d bytes, ΣR=%.0f maxR=%.0f\n",
		resp.Algorithm, after.StoredBytes, resp.SumR, resp.MaxR)

	// Verify a checkout round trip over HTTP.
	payload, err := client.Checkout(cleaningTip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checked out version %d over HTTP: %d bytes\n", cleaningTip, len(payload))
}

func evolve(rng *rand.Rand, t *dataset.Table) *dataset.Table {
	s := dataset.RandomScript(rng, t.NumRows(), t.NumCols(), 2)
	out, err := s.Apply(t)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func mustCSV(t *dataset.Table) []byte {
	b, err := t.EncodeCSV()
	if err != nil {
		log.Fatal(err)
	}
	return b
}
