// Data-science scenario (paper §1, second motivating example): a
// computational-biology group keeps private copies of a shared CSV dataset,
// cleans and extends them on branches, merges results back, and the
// repository's storage is then globally optimized with LMG.
//
// Run with a scratch directory:
//
//	go run ./examples/datascience
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"versiondb"
	"versiondb/internal/dataset"
)

func main() {
	dir, err := os.MkdirTemp("", "versiondb-datascience-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	r, err := versiondb.InitRepo(dir)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	// The shared dataset: a 300-row sample table.
	base := dataset.Random(rng, 300, 6)
	payload := mustCSV(base)
	root, err := r.Commit("master", payload, "initial shared dataset")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed v%d: shared dataset (%d bytes)\n", root, len(payload))

	// Team 1: cleansing pass on a branch.
	if err := r.Branch("team1", root); err != nil {
		log.Fatal(err)
	}
	t1 := evolve(rng, base, 3)
	v1, err := r.Commit("team1", mustCSV(t1), "team1: cleanse nulls, fix units")
	if err != nil {
		log.Fatal(err)
	}

	// Team 2: adds derived fields on another branch.
	if err := r.Branch("team2", root); err != nil {
		log.Fatal(err)
	}
	t2 := evolve(rng, base, 4)
	v2, err := r.Commit("team2", mustCSV(t2), "team2: add normalized columns")
	if err != nil {
		log.Fatal(err)
	}

	// More iterations on each branch.
	for i := 0; i < 4; i++ {
		t1 = evolve(rng, t1, 2)
		if _, err = r.Commit("team1", mustCSV(t1), fmt.Sprintf("team1 iteration %d", i+1)); err != nil {
			log.Fatal(err)
		}
		t2 = evolve(rng, t2, 2)
		if _, err = r.Commit("team2", mustCSV(t2), fmt.Sprintf("team2 iteration %d", i+1)); err != nil {
			log.Fatal(err)
		}
	}

	// The user merges team2's work into team1 and hands the system the
	// result (the prototype does not auto-merge; see paper §5).
	tip2, _ := r.Tip("team2")
	merged := evolve(rng, t1, 1)
	mv, err := r.Merge("team1", tip2, mustCSV(merged), "merge team2 into team1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user-merged v%d and v%d into v%d\n", v1, v2, mv)

	before := r.Stats()
	fmt.Printf("before optimize: %d versions, stored=%d bytes (logical %d), max chain=%d\n",
		before.Versions, before.StoredBytes, before.LogicalBytes, before.MaxChainHops)

	// Globally optimize: LMG with a 1.25× storage budget over the minimum,
	// dispatched by registry name through the unified solver API.
	sol, err := r.Optimize(context.Background(), versiondb.OptimizeOptions{
		Request:      versiondb.Request{Solver: "lmg"},
		BudgetFactor: 1.25,
		RevealHops:   6,
		Compress:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	after := r.Stats()
	fmt.Printf("after optimize (%s): stored=%d bytes, materialized=%d, max chain=%d\n",
		sol.Algorithm, after.StoredBytes, after.Materialized, after.MaxChainHops)

	// Every version still checks out byte-identical.
	for v := 0; v < r.NumVersions(); v++ {
		if _, err := r.Checkout(v); err != nil {
			log.Fatalf("checkout v%d after optimize: %v", v, err)
		}
	}
	fmt.Printf("all %d versions verified after re-layout\n", r.NumVersions())
}

func evolve(rng *rand.Rand, t *dataset.Table, ops int) *dataset.Table {
	script := dataset.RandomScript(rng, t.NumRows(), t.NumCols(), ops)
	out, err := script.Apply(t)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func mustCSV(t *dataset.Table) []byte {
	b, err := t.EncodeCSV()
	if err != nil {
		log.Fatal(err)
	}
	return b
}
