// Workload-aware storage (paper §5.3, Figure 16): when access frequencies
// are skewed — a few versions served constantly, a long tail touched rarely
// — LMG can weight its greedy ratio by frequency and spend the storage
// budget on the hot versions.
package main

import (
	"fmt"
	"log"

	"versiondb"
)

func main() {
	// A DC-style dense version graph with 200 versions.
	m, err := versiondb.BuildWorkload(versiondb.DC, 200, true, 7)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := versiondb.NewInstance(m)
	if err != nil {
		log.Fatal(err)
	}
	// Zipf-distributed access frequencies (exponent 2, like the paper).
	freq := versiondb.Zipf(m.N(), 2, 7)

	mca, err := versiondb.MinStorage(inst)
	if err != nil {
		log.Fatal(err)
	}
	budgets, err := versiondb.Budgets(inst, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("budget        plain-LMG weighted ΣR   aware-LMG weighted ΣR   improvement")
	w := make([]float64, m.N()+1) // augmented-graph weights (root = 0)
	copy(w[1:], freq)
	for _, b := range budgets[1:] { // skip the MCA point where nothing moves
		plain, err := versiondb.LMG(inst, versiondb.LMGOptions{Budget: b})
		if err != nil {
			log.Fatal(err)
		}
		aware, err := versiondb.LMG(inst, versiondb.LMGOptions{Budget: b, Freq: freq})
		if err != nil {
			log.Fatal(err)
		}
		pw := plain.Tree.WeightedSumRecreation(w)
		aw := aware.Tree.WeightedSumRecreation(w)
		fmt.Printf("%-12.0f  %-22.0f  %-22.0f  %.2f×\n", b, pw, aw, pw/aw)
	}
	fmt.Printf("(minimum storage %.0f; budgets interpolate toward the SPT)\n", mca.Storage)
}
