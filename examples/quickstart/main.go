// Quickstart: the paper's running example (Figures 1–4) end to end.
//
// Builds the five-version cost matrices of Figure 2, then solves all six
// problem variants of Table 1 and prints the storage graph each one picks.
package main

import (
	"fmt"
	"log"

	"versiondb"
)

func main() {
	// Versions V1..V5 are indices 0..4. Vertex annotations ⟨Δii, Φii⟩ and
	// edge annotations ⟨Δij, Φij⟩ from the paper's Figure 2.
	m := versiondb.NewMatrix(5, true)
	m.SetFull(0, 10000, 10000) // V1
	m.SetFull(1, 10100, 10100) // V2
	m.SetFull(2, 9700, 9700)   // V3
	m.SetFull(3, 9800, 9800)   // V4
	m.SetFull(4, 10120, 10120) // V5
	m.SetDelta(0, 1, 200, 200)
	m.SetDelta(0, 2, 1000, 3000)
	m.SetDelta(1, 0, 500, 600)
	m.SetDelta(1, 3, 50, 400)
	m.SetDelta(1, 4, 800, 2500)
	m.SetDelta(2, 1, 1100, 3200)
	m.SetDelta(2, 4, 200, 550)
	m.SetDelta(3, 4, 900, 2500)
	m.SetDelta(4, 3, 800, 2300)

	inst, err := versiondb.NewInstance(m)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, s *versiondb.Solution, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-34s storage=%6.0f  ΣR=%6.0f  maxR=%6.0f  materialized=%s\n",
			name, s.Storage, s.SumR, s.MaxR, describe(s))
	}

	fmt.Println("Paper running example (5 versions):")
	s1, err := versiondb.MinStorage(inst)
	show("Problem 1  MinStorage (MCA)", s1, err)
	s2, err := versiondb.MinRecreation(inst)
	show("Problem 2  MinRecreation (SPT)", s2, err)
	budget := s1.Storage * 1.8
	s3, err := versiondb.LMG(inst, versiondb.LMGOptions{Budget: budget})
	show(fmt.Sprintf("Problem 3  LMG (β=%.0f)", budget), s3, err)
	s4, err := versiondb.Problem4(inst, budget)
	show(fmt.Sprintf("Problem 4  MP-search (β=%.0f)", budget), s4, err)
	s5, err := versiondb.Problem5(inst, s2.SumR*1.02)
	show("Problem 5  LMG-search (θ=1.02·min)", s5, err)
	s6, err := versiondb.MP(inst, 10600)
	show("Problem 6  MP (θ=10600)", s6, err)

	// The exact reference solver agrees with MP here.
	ex, err := versiondb.Exact(inst, 10600, versiondb.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s storage=%6.0f  (optimal=%v, %d nodes)\n",
		"Exact B&B   (θ=10600)", ex.Solution.Storage, ex.Optimal, ex.Nodes)
}

// describe lists which versions a solution materializes, V1-based like the
// paper's figures.
func describe(s *versiondb.Solution) string {
	out := ""
	for _, v := range s.Tree.MaterializedSet() {
		if out != "" {
			out += ","
		}
		out += fmt.Sprintf("V%d", v) // vertex v is version v-1, i.e. paper's V_v
	}
	return "{" + out + "}"
}
