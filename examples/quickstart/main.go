// Quickstart: the paper's running example (Figures 1–4) end to end.
//
// Builds the five-version cost matrices of Figure 2, then solves all six
// problem variants of Table 1 through the unified Solve API — each problem
// is one Request naming a registered solver — and prints the storage graph
// each one picks.
package main

import (
	"context"
	"fmt"
	"log"

	"versiondb"
)

func main() {
	// Versions V1..V5 are indices 0..4. Vertex annotations ⟨Δii, Φii⟩ and
	// edge annotations ⟨Δij, Φij⟩ from the paper's Figure 2.
	m := versiondb.NewMatrix(5, true)
	m.SetFull(0, 10000, 10000) // V1
	m.SetFull(1, 10100, 10100) // V2
	m.SetFull(2, 9700, 9700)   // V3
	m.SetFull(3, 9800, 9800)   // V4
	m.SetFull(4, 10120, 10120) // V5
	m.SetDelta(0, 1, 200, 200)
	m.SetDelta(0, 2, 1000, 3000)
	m.SetDelta(1, 0, 500, 600)
	m.SetDelta(1, 3, 50, 400)
	m.SetDelta(1, 4, 800, 2500)
	m.SetDelta(2, 1, 1100, 3200)
	m.SetDelta(2, 4, 200, 550)
	m.SetDelta(3, 4, 900, 2500)
	m.SetDelta(4, 3, 800, 2300)

	inst, err := versiondb.NewInstance(m)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	show := func(name string, req versiondb.Request) *versiondb.Result {
		res, err := versiondb.Solve(ctx, inst, req)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-34s storage=%6.0f  ΣR=%6.0f  maxR=%6.0f  materialized=%s\n",
			name, res.Storage, res.SumR, res.MaxR, describe(res.Solution))
		return res
	}

	fmt.Println("Paper running example (5 versions):")
	s1 := show("Problem 1  MinStorage (MCA)", versiondb.Request{Solver: "mst"})
	s2 := show("Problem 2  MinRecreation (SPT)", versiondb.Request{Solver: "spt"})
	budget := s1.Storage * 1.8
	show(fmt.Sprintf("Problem 3  LMG (β=%.0f)", budget), versiondb.Request{Solver: "lmg", Budget: budget})
	show(fmt.Sprintf("Problem 4  MP-search (β=%.0f)", budget), versiondb.Request{Solver: "p4", Budget: budget})
	show("Problem 5  LMG-search (θ=1.02·min)", versiondb.Request{Solver: "p5", Theta: s2.SumR * 1.02})
	show("Problem 6  MP (θ=10600)", versiondb.Request{Solver: "mp", Theta: 10600})

	// The exact reference solver agrees with MP here; the Result carries
	// its optimality metadata.
	ex, err := versiondb.Solve(ctx, inst, versiondb.Request{Solver: "exact", Theta: 10600})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s storage=%6.0f  (optimal=%v, %d nodes)\n",
		"Exact B&B   (θ=10600)", ex.Storage, ex.Optimal, ex.Nodes)

	// The registry is introspectable: every solver above plus the
	// heuristic baselines, with their paper problems and constraints.
	fmt.Println("\nRegistered solvers:")
	for _, info := range versiondb.Solvers() {
		fmt.Printf("  %-6s %-20s %-18s constraint: %s\n",
			info.Name, info.Algorithm, info.Problem, info.Constraint)
	}
}

// describe lists which versions a solution materializes, V1-based like the
// paper's figures.
func describe(s *versiondb.Solution) string {
	out := ""
	for _, v := range s.Tree.MaterializedSet() {
		if out != "" {
			out += ","
		}
		out += fmt.Sprintf("V%d", v) // vertex v is version v-1, i.e. paper's V_v
	}
	return "{" + out + "}"
}
