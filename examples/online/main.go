// Online versioning (the paper's §7 future work): versions arrive one at a
// time and must be placed immediately — materialize or delta against an
// existing version — with an optional periodic offline re-optimization.
// This example streams a DC-style workload through the online store and
// compares three strategies against the offline optimum.
package main

import (
	"fmt"
	"log"

	"versiondb"
	"versiondb/internal/costs"
	"versiondb/internal/solve"
)

func main() {
	const n = 300
	m, err := versiondb.BuildWorkload(versiondb.DC, n, true, 11)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := versiondb.NewInstance(m)
	if err != nil {
		log.Fatal(err)
	}
	offline, err := versiondb.MinStorage(inst)
	if err != nil {
		log.Fatal(err)
	}

	// Strategy 1: greedy min-delta on arrival.
	greedy := versiondb.NewOnline(versiondb.OnlineOptions{Policy: versiondb.OnlineMinDelta, Directed: true})
	feed(m, greedy, 0)

	// Strategy 2: greedy with a recreation bound (online Problem 6).
	var maxSize float64
	for v := 0; v < n; v++ {
		p, _ := m.Full(v)
		if p.Recreate > maxSize {
			maxSize = p.Recreate
		}
	}
	bounded := versiondb.NewOnline(versiondb.OnlineOptions{
		Policy: versiondb.OnlineBounded, Theta: 1.5 * maxSize, Directed: true,
	})
	feed(m, bounded, 0)

	// Strategy 3: greedy + LMG re-optimization every 100 arrivals.
	periodic := versiondb.NewOnline(versiondb.OnlineOptions{Policy: versiondb.OnlineMinDelta, Directed: true})
	feed(m, periodic, 100)

	fmt.Printf("offline MCA:            storage=%11.0f  ΣR=%12.0f\n", offline.Storage, offline.SumR)
	report("online greedy", greedy)
	report("online bounded (1.5×)", bounded)
	report("online + periodic LMG", periodic)
	fmt.Printf("greedy overhead vs offline optimum: %.2f%%\n",
		100*(greedy.Storage()-offline.Storage)/offline.Storage)
}

// feed streams the matrix version-by-version; reoptEvery > 0 triggers LMG
// with a 1.25× budget at that cadence.
func feed(m *versiondb.Matrix, o *solve.Online, reoptEvery int) {
	n := m.N()
	for v := 0; v < n; v++ {
		full, _ := m.Full(v)
		in := map[int]costs.Pair{}
		for u := 0; u < v; u++ {
			if p, ok := m.Delta(u, v); ok {
				in[u] = p
			}
		}
		if _, err := o.Add(full, in); err != nil {
			log.Fatal(err)
		}
		if reoptEvery > 0 && (v+1)%reoptEvery == 0 {
			if _, err := o.Reoptimize(1.25); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func report(name string, o *solve.Online) {
	fmt.Printf("%-23s storage=%11.0f  ΣR=%12.0f  maxR=%10.0f\n",
		name, o.Storage(), o.SumRecreation(), o.MaxRecreation())
}
