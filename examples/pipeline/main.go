// Pipeline scenario (paper §1, first motivating example): intermediate
// result datasets of analysis pipelines are near-duplicates of each other.
// Some versions can be recreated by re-running a small derivation script —
// a delta whose storage cost Δ is tiny but whose recreation cost Φ is the
// script's runtime, the directed Φ ≠ Δ regime of Table 1's last column.
// The pipeline has a retrieval SLA, so storage is minimized with the "mp"
// solver under a bound on the maximum recreation cost (Problem 6), driven
// through the unified Solve API: infeasible SLAs surface as ErrInfeasible
// rather than ad-hoc error strings.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"versiondb"
)

func main() {
	const n = 12 // pipeline stages/variants
	m := versiondb.NewMatrix(n, true)

	// Version 0: the raw input (1 GB-equivalent units). Retrieval cost of a
	// materialized version equals its size.
	sizes := make([]float64, n)
	sizes[0] = 1000
	for i := 1; i < n; i++ {
		sizes[i] = 900 + 25*float64(i%4) // transformed outputs, similar sizes
	}
	for i := 0; i < n; i++ {
		m.SetFull(i, sizes[i], sizes[i])
	}
	// Each stage i>0 derives from stage i-1 two ways:
	//  - a stored diff: Δ=80, Φ=80 (proportional)
	//  - a derivation script: Δ=2 (a query), Φ=600 (recompute time)
	// We reveal the cheaper-Δ script delta; the solver must respect Φ.
	for i := 1; i < n; i++ {
		if i%3 == 0 {
			m.SetDelta(i-1, i, 80, 80) // materialized diff available
		} else {
			m.SetDelta(i-1, i, 2, 600) // "SQL query that generates Vi from Vj"
		}
		if i >= 2 {
			m.SetDelta(i-2, i, 120, 150) // two-step diffs also revealed
		}
	}

	inst, err := versiondb.NewInstance(m)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	minStorage, err := versiondb.Solve(ctx, inst, versiondb.Request{Solver: "mst"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min storage (no SLA):    storage=%6.0f  maxR=%6.0f  — scripts everywhere, slow retrieval\n",
		minStorage.Storage, minStorage.MaxR)

	// SLA: any intermediate dataset must be recreatable within 1800 units.
	for _, sla := range []float64{4000, 2500, 1800, 1200} {
		sol, err := versiondb.Solve(ctx, inst, versiondb.Request{Solver: "mp", Theta: sla})
		if errors.Is(err, versiondb.ErrInfeasible) {
			fmt.Printf("SLA θ=%4.0f: infeasible — no placement meets it\n", sla)
			continue
		} else if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SLA θ=%4.0f: MP storage=%6.0f  maxR=%6.0f  materialized=%d versions\n",
			sla, sol.Storage, sol.MaxR, len(sol.Tree.MaterializedSet()))
	}

	// Compare with the storage-budget view (Problem 4): what is the best
	// worst-case latency we can buy with 1.5× the minimum storage?
	sol4, err := versiondb.Solve(ctx, inst, versiondb.Request{Solver: "p4", Budget: minStorage.Storage * 1.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget 1.5×min (%6.0f): best maxR=%6.0f\n", minStorage.Storage*1.5, sol4.MaxR)
}
