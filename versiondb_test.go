package versiondb_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"versiondb"
)

// TestPublicAPIEndToEnd drives the whole public facade: build a matrix, run
// every solver, run the repository.
func TestPublicAPIEndToEnd(t *testing.T) {
	m := versiondb.NewMatrix(4, true)
	m.SetFull(0, 1000, 1000)
	m.SetFull(1, 1010, 1010)
	m.SetFull(2, 1020, 1020)
	m.SetFull(3, 1030, 1030)
	m.SetDelta(0, 1, 25, 25)
	m.SetDelta(1, 2, 30, 30)
	m.SetDelta(2, 3, 35, 35)
	m.SetDelta(0, 3, 90, 90)

	inst, err := versiondb.NewInstance(m)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	mst, err := versiondb.MinStorage(inst)
	if err != nil {
		t.Fatalf("MinStorage: %v", err)
	}
	if mst.Storage != 1000+25+30+35 {
		t.Errorf("MST storage = %g, want 1090", mst.Storage)
	}
	spt, err := versiondb.MinRecreation(inst)
	if err != nil {
		t.Fatalf("MinRecreation: %v", err)
	}
	if spt.SumR != 1000+1010+1020+1030 {
		t.Errorf("SPT ΣR = %g", spt.SumR)
	}
	if _, err := versiondb.LMG(inst, versiondb.LMGOptions{Budget: 2 * mst.Storage}); err != nil {
		t.Errorf("LMG: %v", err)
	}
	if _, err := versiondb.MP(inst, spt.MaxR*1.2); err != nil {
		t.Errorf("MP: %v", err)
	}
	if _, err := versiondb.LAST(inst, 2); err != nil {
		t.Errorf("LAST: %v", err)
	}
	if _, err := versiondb.GitH(inst, versiondb.GitHOptions{Window: 4, MaxDepth: 10}); err != nil {
		t.Errorf("GitH: %v", err)
	}
	if _, err := versiondb.Problem4(inst, mst.Storage*2); err != nil {
		t.Errorf("Problem4: %v", err)
	}
	if _, err := versiondb.Problem5(inst, spt.SumR*1.5); err != nil {
		t.Errorf("Problem5: %v", err)
	}
	ex, err := versiondb.Exact(inst, spt.MaxR*1.2, versiondb.ExactOptions{})
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if !ex.Optimal {
		t.Errorf("tiny exact instance not solved to optimality")
	}
	if bs, err := versiondb.Budgets(inst, 3); err != nil || len(bs) != 3 {
		t.Errorf("Budgets: %v %v", bs, err)
	}
	if ts, err := versiondb.Thetas(inst, 3); err != nil || len(ts) != 3 {
		t.Errorf("Thetas: %v %v", ts, err)
	}
}

// TestPublicSolveAPI drives the unified request/result path through the
// facade: every registered solver by name, the normalized sentinels, and
// cancellation.
func TestPublicSolveAPI(t *testing.T) {
	m, err := versiondb.BuildWorkload(versiondb.LC, 30, true, 1)
	if err != nil {
		t.Fatalf("BuildWorkload: %v", err)
	}
	inst, err := versiondb.NewInstance(m)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	ctx := context.Background()
	mst, err := versiondb.Solve(ctx, inst, versiondb.Request{Solver: "mst"})
	if err != nil {
		t.Fatalf("Solve(mst): %v", err)
	}
	spt, err := versiondb.Solve(ctx, inst, versiondb.Request{Solver: "spt"})
	if err != nil {
		t.Fatalf("Solve(spt): %v", err)
	}
	if !mst.Optimal || !spt.Optimal {
		t.Errorf("mst/spt not marked optimal")
	}
	infos := versiondb.Solvers()
	if len(infos) != 9 || len(versiondb.SolverNames()) != 9 {
		t.Fatalf("registry has %d solvers, want 9", len(infos))
	}
	for _, info := range infos {
		req := versiondb.Request{Solver: info.Name, Budget: mst.Storage * 1.5,
			Theta: mst.SumR, Alpha: 2, MaxNodes: 100_000}
		if info.Name == "mp" || info.Name == "exact" {
			req.Theta = mst.MaxR
		}
		res, err := versiondb.Solve(ctx, inst, req)
		if err != nil {
			t.Errorf("Solve(%s): %v", info.Name, err)
			continue
		}
		if res.Solver != info.Name || res.Tree == nil {
			t.Errorf("Solve(%s) returned %+v", info.Name, res)
		}
	}
	if _, err := versiondb.Solve(ctx, inst, versiondb.Request{Solver: "nope"}); !errors.Is(err, versiondb.ErrUnknownSolver) {
		t.Errorf("unknown solver err = %v", err)
	}
	if _, err := versiondb.Solve(ctx, inst, versiondb.Request{Solver: "lmg"}); !errors.Is(err, versiondb.ErrInvalidRequest) {
		t.Errorf("missing budget err = %v", err)
	}
	if _, err := versiondb.Solve(ctx, inst, versiondb.Request{Solver: "mp", Theta: spt.MaxR / 2}); !errors.Is(err, versiondb.ErrInfeasible) {
		t.Errorf("infeasible θ err = %v", err)
	}
	canceledCtx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := versiondb.Solve(canceledCtx, inst, versiondb.Request{Solver: "lmg", Budget: mst.Storage * 2}); !errors.Is(err, versiondb.ErrCanceled) {
		t.Errorf("canceled ctx err = %v", err)
	}
}

func TestPublicAPIWorkloadsAndRepo(t *testing.T) {
	for _, p := range []versiondb.Preset{versiondb.DC, versiondb.LC, versiondb.BF, versiondb.LF} {
		m, err := versiondb.BuildWorkload(p, 40, true, 1)
		if err != nil {
			t.Fatalf("BuildWorkload(%s): %v", p, err)
		}
		if m.N() != 40 {
			t.Errorf("%s: N = %d", p, m.N())
		}
	}
	if f := versiondb.Zipf(10, 2, 1); len(f) != 10 {
		t.Errorf("Zipf length %d", len(f))
	}

	dir := t.TempDir()
	r, err := versiondb.InitRepo(dir)
	if err != nil {
		t.Fatalf("InitRepo: %v", err)
	}
	payload := []byte("a,b\n1,2\n3,4\n")
	if _, err := r.Commit("master", payload, "root"); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	v2 := []byte("a,b\n1,2\n3,5\n9,9\n")
	if _, err := r.Commit("master", v2, "edit"); err != nil {
		t.Fatalf("Commit 2: %v", err)
	}
	if _, err := r.Optimize(context.Background(), versiondb.OptimizeOptions{
		Objective:    versiondb.SumRecreationObjective,
		BudgetFactor: 1.5,
		RevealHops:   3,
	}); err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	r2, err := versiondb.OpenRepo(dir)
	if err != nil {
		t.Fatalf("OpenRepo: %v", err)
	}
	got, err := r2.Checkout(1)
	if err != nil || !bytes.Equal(got, v2) {
		t.Errorf("Checkout after reopen: %q %v", got, err)
	}
}
